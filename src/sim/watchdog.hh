/**
 * @file
 * Liveness watchdog for the simulation engine.
 *
 * Two hang modes exist in an event-driven machine model:
 *
 *  - Deadlock: a component is waiting for a wakeup that will never be
 *    scheduled (a barrier short of participants, a join that lost a
 *    CE). The event queue drains while the wait state is non-empty and
 *    run() returns with the machine silently stuck.
 *  - Livelock: events keep executing but nothing ever progresses (a
 *    spin lock whose holder died keeps generating poll traffic
 *    forever). The event loop never returns at all.
 *
 * The watchdog turns both into a typed SimError carrying a diagnostic
 * bundle instead of a hang. Components register wait markers while
 * they are blocked on an external wakeup (beginWait/endWait) and mark
 * forward progress (noteProgress) whenever real work completes — an
 * iteration taken, a barrier released, a stream finished. The engine
 * then consults the watchdog after every event (livelock: no progress
 * marker across `livelock_window` ticks) and when its queue drains
 * (deadlock: wait markers outstanding with nothing left to run).
 *
 * The watchdog never schedules events of its own, so an armed watchdog
 * does not keep an otherwise-finished simulation alive.
 */

#ifndef CEDARSIM_SIM_WATCHDOG_HH
#define CEDARSIM_SIM_WATCHDOG_HH

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "sim/error.hh"
#include "sim/named.hh"
#include "sim/statreg.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace cedar {

class CheckpointWriter;
class CheckpointReader;

/** Tuning knobs for the liveness watchdog. */
struct WatchdogParams
{
    /** Master switch; disabled watchdogs never raise. */
    bool enabled = true;
    /** Ticks without a forward-progress marker before livelock fires.
     *  Generous by default: 50M ticks is 8.5 simulated seconds, three
     *  orders of magnitude above any legitimate gap in the workloads. */
    Tick livelock_window = 50'000'000;
    /** Events between livelock checks (checks are O(1) but there is no
     *  reason to compare on every event). */
    std::uint64_t check_every_events = 4096;
};

/** Deadlock/livelock detector attachable to one Simulation. */
class Watchdog : public Named
{
  public:
    explicit Watchdog(const std::string &name,
                      const WatchdogParams &params = WatchdogParams{});

    const WatchdogParams &params() const { return _params; }
    void setParams(const WatchdogParams &params) { _params = params; }

    /**
     * Provider of the diagnostic bundle attached to raised errors
     * (typically the machine's stat snapshot and in-flight listing).
     */
    void
    setDiagnostics(std::function<std::string()> fn)
    {
        _diagnostics = std::move(fn);
    }

    /** Record a forward-progress marker at @p now. */
    void
    noteProgress(Tick now)
    {
        _last_progress = now;
        _progress_marks.inc();
    }

    /**
     * Register a blocked component waiting for an external wakeup.
     * @param what description shown in deadlock reports
     * @return token to pass to endWait() on wakeup
     */
    unsigned beginWait(std::string what);

    /** Clear the wait registered under @p token. */
    void endWait(unsigned token);

    /** Number of components currently blocked. */
    std::size_t pendingWaits() const { return _waits.size(); }

    /** Descriptions of every outstanding wait. */
    std::vector<std::string> waitDescriptions() const;

    /** Engine hook: a run is starting at @p now. */
    void onRunStart(Tick now);

    /**
     * Engine hook: one event just executed at @p now. Raises a
     * SimError of kind `livelock` when no progress marker has been
     * recorded for more than livelock_window ticks.
     */
    void onEvent(Tick now);

    /**
     * Engine hook: the event queue drained at @p now. Raises a
     * SimError of kind `deadlock` when wait markers are outstanding.
     */
    void onDrain(Tick now);

    std::uint64_t progressMarks() const { return _progress_marks.value(); }

    void registerStats(StatRegistry &reg);

    /**
     * Progress clock, token counter, and counters. Requires no
     * outstanding waits (a quiescent machine has none — outstanding
     * waits at a drained queue are a deadlock, not a checkpoint).
     */
    void saveState(CheckpointWriter &w) const;
    void restoreState(const CheckpointReader &r);

  private:
    [[noreturn]] void raise(SimError::Kind kind, Tick now,
                            const std::string &message);

    WatchdogParams _params;
    std::function<std::string()> _diagnostics;
    Tick _last_progress = 0;
    std::uint64_t _events_since_check = 0;
    unsigned _next_token = 0;
    std::map<unsigned, std::string> _waits;
    Counter _progress_marks;
    Counter _waits_begun;
};

} // namespace cedar

#endif // CEDARSIM_SIM_WATCHDOG_HH
