/**
 * @file
 * Error and status reporting in the gem5 tradition.
 *
 * panic()  — an internal simulator invariant was violated; throws a
 *            SimError of kind `assertion`.
 * fatal()  — the user asked for something impossible (bad config);
 *            throws a SimError of kind `config`.
 * warn()   — something is modeled approximately; simulation continues.
 * inform() — plain status output.
 *
 * Set CEDAR_ABORT_ON_ERROR=1 to abort() instead of throwing (keeps the
 * failing stack alive under a debugger).
 */

#ifndef CEDARSIM_SIM_LOGGING_HH
#define CEDARSIM_SIM_LOGGING_HH

#include <sstream>
#include <string>

namespace cedar {

namespace logging_detail {

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

/** Fold a pack of streamable values into one string. */
template <typename... Args>
std::string
format(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

} // namespace logging_detail

/** Abort on a broken internal invariant (simulator bug). */
#define panic(...)                                                         \
    ::cedar::logging_detail::panicImpl(                                    \
        __FILE__, __LINE__, ::cedar::logging_detail::format(__VA_ARGS__))

/** Exit on an unusable user configuration. */
#define fatal(...)                                                         \
    ::cedar::logging_detail::fatalImpl(                                    \
        __FILE__, __LINE__, ::cedar::logging_detail::format(__VA_ARGS__))

/** Warn about approximate or suspicious behaviour and continue. */
#define warn(...)                                                          \
    ::cedar::logging_detail::warnImpl(                                     \
        ::cedar::logging_detail::format(__VA_ARGS__))

/** Emit an informational status message. */
#define inform(...)                                                        \
    ::cedar::logging_detail::informImpl(                                   \
        ::cedar::logging_detail::format(__VA_ARGS__))

/** panic() unless the condition holds. */
#define sim_assert(cond, ...)                                              \
    do {                                                                   \
        if (!(cond)) {                                                     \
            ::cedar::logging_detail::panicImpl(                            \
                __FILE__, __LINE__,                                        \
                ::cedar::logging_detail::format(                           \
                    "assertion '" #cond "' failed: ", ##__VA_ARGS__));     \
        }                                                                  \
    } while (0)

/** Quiet-mode switch for tests: suppresses warn()/inform() output. */
void setLogQuiet(bool quiet);
bool logQuiet();

} // namespace cedar

#endif // CEDARSIM_SIM_LOGGING_HH
