/**
 * @file
 * The five Practical Parallelism Tests (PPTs) of Section 4.3.
 *
 * The Fundamental Principle of Parallel Processing holds that clock
 * speed is interchangeable with parallelism while (A) maintaining
 * delivered performance that is (B) stable over a class of
 * computations. The paper splits this, plus commercial viability, into
 * five tests; this header provides evaluators for the four the paper
 * applies (PPT5, scalable reimplementability, is explicitly left to
 * future simulation studies — as it is here).
 */

#ifndef CEDARSIM_METHOD_PPT_HH
#define CEDARSIM_METHOD_PPT_HH

#include <string>
#include <vector>

#include "method/metrics.hh"
#include "method/stability.hh"

namespace cedar::method {

/** PPT1 — Delivered performance: band tally over a code ensemble. */
struct Ppt1Result
{
    BandCount bands;
    /** Passing means the ensemble delivers at least intermediate
     *  performance on average (no majority of unacceptables). */
    bool passed;
};

Ppt1Result evaluatePpt1(const std::vector<double> &speedups,
                        unsigned processors);

/** PPT2 — Stable performance: instability with exceptions. */
struct Ppt2Result
{
    double instability_raw;     ///< In(K, 0)
    unsigned exceptions_needed; ///< e to reach workstation stability
    double instability_at_e;    ///< In(K, e) at that e
    /** Passing: workstation-level stability with a small number of
     *  exceptions (the paper accepts 2, rejects the YMP's 6). */
    bool passed;
};

Ppt2Result evaluatePpt2(const std::vector<double> &rates,
                        unsigned max_small_exceptions = 2);

/** PPT3 — Portability/programmability via compiled performance. */
struct Ppt3Result
{
    BandCount bands; ///< restructured/compiled efficiency bands
    /** The paper's conclusion is prospective: acceptable levels are
     *  reachable in the next few years; pass = any code already at
     *  high or more intermediate than unacceptable. */
    bool promising;
};

Ppt3Result evaluatePpt3(const std::vector<double> &speedups,
                        unsigned processors);

/** One (P, N) observation of a scaling study. */
struct ScalePoint
{
    unsigned processors;
    double problem_size;
    double speedup;
};

/** PPT4 — Code and architecture scalability over (P, N). */
struct Ppt4Result
{
    /** Band of every observation. */
    std::vector<Band> bands;
    /** Smallest problem size showing high performance at max P,
     *  0 if none. */
    double high_band_threshold_n;
    /** Stability over problem size at fixed max P, all observations. */
    double size_stability;
    /** Stability within the high-band regime at max P (1 if empty). */
    double high_stability;
    /** Stability within the intermediate regime at max P (1 if empty). */
    double intermediate_stability;
    /** Scalable if no observation is unacceptable and each regime's
     *  size stability satisfies the paper's 0.5 <= St <= 1 criterion
     *  (the paper finds Cedar "scalable with high performance for many
     *  problem sizes and with intermediate performance for
     *  debugging-sized runs" — two regimes, each stable). */
    bool scalable;
    /** True if the scalable range includes the high band. */
    bool scalable_high;
};

Ppt4Result evaluatePpt4(const std::vector<ScalePoint> &points);

} // namespace cedar::method

#endif // CEDARSIM_METHOD_PPT_HH
