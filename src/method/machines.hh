/**
 * @file
 * Reference comparison machines of Section 4.3: the Cray Y-MP/8, the
 * Cray 1, and the Thinking Machines CM-5.
 *
 * The paper compares Cedar against published measurements of these
 * systems; it does not model them. We therefore carry them as data:
 * per-code rate vectors and manual-optimization efficiencies for the
 * Crays, and a calibrated analytic banded matrix-vector model for the
 * CM-5 (whose communication structure bounds it; [FWPS92]).
 *
 * The per-code columns of the scanned paper are unreadable, so the
 * vectors here are calibrated estimates chosen to reproduce every
 * aggregate the text states: the instability triples of Table 5, the
 * band counts of Table 6 and Figure 3, and the Y-MP-to-Cedar
 * harmonic-mean MFLOPS ratio of 7.4. EXPERIMENTS.md records each
 * reproduced statement.
 */

#ifndef CEDARSIM_METHOD_MACHINES_HH
#define CEDARSIM_METHOD_MACHINES_HH

#include <string>
#include <vector>

#include "method/metrics.hh"

namespace cedar::method {

/** One Perfect code's results on a reference machine. */
struct RefCodeResult
{
    std::string code;
    /** MFLOPS with the machine's baseline (automatic) compiler. */
    double auto_mflops;
    /** Speedup over serial with the baseline compiler. */
    double auto_speedup;
    /** Efficiency after manual optimization (Figure 3). */
    double manual_efficiency;
};

/** A reference machine's published-results record. */
struct ReferenceMachine
{
    std::string name;
    unsigned processors;
    /** Cycle time in nanoseconds (the paper quotes 170/6 = 28.33 as
     *  the Cedar-to-YMP clock ratio). */
    double clock_ns;
    std::vector<RefCodeResult> codes;

    /** Baseline-compiler rate vector, code order as stored. */
    std::vector<double> autoRates() const;

    /** Baseline-compiler speedups. */
    std::vector<double> autoSpeedups() const;

    /** Manual-optimization efficiencies. */
    std::vector<double> manualEfficiencies() const;
};

/** The 8-processor Cray Y-MP (6 ns clock). */
const ReferenceMachine &ympRef();

/** The Cray 1 (12.5 ns clock), with a modern compiler. */
const ReferenceMachine &cray1Ref();

/** Canonical Perfect Benchmarks code order used everywhere. */
const std::vector<std::string> &perfectCodeNames();

// ---------------------------------------------------------------------
// CM-5 banded matrix-vector model (Section 4.3, PPT4)
// ---------------------------------------------------------------------

/** Parameters of the CM-5 studied in [FWPS92]: no FP accelerators. */
struct Cm5Model
{
    /** Per-node scalar rate in MFLOPS (SPARC node, no vector units). */
    double node_mflops = 4.5;
    /** Fraction of time lost to communication for bandwidth-3 stencils
     *  at 32 nodes (fitted to the published 28-32 MFLOPS range). */
    double comm_fraction_bw3 = 0.787;
    /** Same for bandwidth-11 (more flops per transferred point). */
    double comm_fraction_bw11 = 0.567;

    /**
     * Delivered MFLOPS for a banded matvec.
     * @param bandwidth matrix bandwidth (3 or 11 in the paper)
     * @param n         problem size (16K..256K published)
     * @param processors node count (32, 256, or 512)
     */
    double mflops(unsigned bandwidth, double n, unsigned processors) const;

    /**
     * Band classification relative to @p processors. The CM-5 shows
     * scalable *intermediate* performance in the published ranges:
     * high performance was not achieved relative to 32, 256, or 512
     * processors.
     */
    Band band(unsigned bandwidth, double n, unsigned processors) const;
};

} // namespace cedar::method

#endif // CEDARSIM_METHOD_MACHINES_HH
