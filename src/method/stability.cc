/**
 * @file
 * Stability metric implementation.
 */

#include "stability.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace cedar::method {

double
stability(const std::vector<double> &rates, unsigned exclusions)
{
    sim_assert(!rates.empty(), "stability of an empty ensemble");
    sim_assert(exclusions < rates.size(),
               "cannot exclude the whole ensemble");
    std::vector<double> sorted = rates;
    std::sort(sorted.begin(), sorted.end());
    sim_assert(sorted.front() > 0.0, "rates must be positive");

    double best = 0.0;
    for (unsigned low = 0; low <= exclusions; ++low) {
        unsigned high = exclusions - low;
        double mn = sorted[low];
        double mx = sorted[sorted.size() - 1 - high];
        best = std::max(best, mn / mx);
    }
    return best;
}

double
instability(const std::vector<double> &rates, unsigned exclusions)
{
    return 1.0 / stability(rates, exclusions);
}

unsigned
exclusionsForStability(const std::vector<double> &rates, double threshold)
{
    for (unsigned e = 0; e < rates.size(); ++e) {
        if (instability(rates, e) <= threshold)
            return e;
    }
    return static_cast<unsigned>(rates.size());
}

} // namespace cedar::method
