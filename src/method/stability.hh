/**
 * @file
 * The stability metric St(P, Ni, K, e) of Section 4.3.
 *
 * Stability of an ensemble of K computations is the ratio of the
 * minimum to the maximum performance after excluding e computations
 * whose results are outliers. Instability is its inverse. Outliers are
 * excluded optimally: the e dropped codes are chosen (from either end
 * of the sorted rates) to make the remaining ensemble as stable as
 * possible, matching the paper's usage of "exceptions required to
 * achieve workstation-level stability".
 */

#ifndef CEDARSIM_METHOD_STABILITY_HH
#define CEDARSIM_METHOD_STABILITY_HH

#include <vector>

namespace cedar::method {

/**
 * St(K, e): min/max performance ratio after the best choice of @p e
 * exclusions. Returns a value in (0, 1].
 */
double stability(const std::vector<double> &rates, unsigned exclusions);

/** In(K, e) = 1 / St(K, e). */
double instability(const std::vector<double> &rates, unsigned exclusions);

/**
 * Smallest number of exclusions bringing instability to or below
 * @p threshold (the paper uses 5-6 as the workstation level observed
 * for twenty years of Perfect runs from the VAX 780 on).
 * @return exclusions needed, or K if even K-1 exclusions fail
 */
unsigned exclusionsForStability(const std::vector<double> &rates,
                                double threshold);

/** The paper's workstation-level stability bound: stable if In <= 6. */
constexpr double workstation_instability = 6.0;

} // namespace cedar::method

#endif // CEDARSIM_METHOD_STABILITY_HH
