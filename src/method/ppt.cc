/**
 * @file
 * Practical Parallelism Test evaluators.
 */

#include "ppt.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace cedar::method {

Ppt1Result
evaluatePpt1(const std::vector<double> &speedups, unsigned processors)
{
    Ppt1Result result{};
    for (double s : speedups)
        result.bands.add(classify(s, processors));
    // "Both the Cray YMP and Cedar are on the average acceptable,
    // delivering intermediate parallel performance": pass when the
    // acceptable codes outnumber the unacceptable ones.
    result.passed = result.bands.high + result.bands.intermediate >
                    result.bands.unacceptable;
    return result;
}

Ppt2Result
evaluatePpt2(const std::vector<double> &rates,
             unsigned max_small_exceptions)
{
    Ppt2Result result{};
    result.instability_raw = instability(rates, 0);
    result.exceptions_needed =
        exclusionsForStability(rates, workstation_instability);
    result.instability_at_e =
        result.exceptions_needed < rates.size()
            ? instability(rates, result.exceptions_needed)
            : result.instability_raw;
    result.passed = result.exceptions_needed <= max_small_exceptions;
    return result;
}

Ppt3Result
evaluatePpt3(const std::vector<double> &speedups, unsigned processors)
{
    Ppt3Result result{};
    for (double s : speedups)
        result.bands.add(classify(s, processors));
    result.promising =
        result.bands.high > 0 &&
        result.bands.intermediate >= result.bands.unacceptable;
    return result;
}

Ppt4Result
evaluatePpt4(const std::vector<ScalePoint> &points)
{
    sim_assert(!points.empty(), "PPT4 needs observations");
    Ppt4Result result{};
    result.bands.reserve(points.size());

    unsigned max_p = 0;
    for (const auto &pt : points)
        max_p = std::max(max_p, pt.processors);

    bool any_unacceptable = false;
    double high_n = 0.0;
    std::vector<double> max_p_speedups;
    std::vector<double> high_speedups;
    std::vector<double> intermediate_speedups;
    for (const auto &pt : points) {
        Band b = classify(pt.speedup, pt.processors);
        result.bands.push_back(b);
        if (b == Band::unacceptable)
            any_unacceptable = true;
        if (pt.processors == max_p) {
            max_p_speedups.push_back(pt.speedup);
            if (b == Band::high) {
                high_speedups.push_back(pt.speedup);
                if (high_n == 0.0 || pt.problem_size < high_n)
                    high_n = pt.problem_size;
            } else if (b == Band::intermediate) {
                intermediate_speedups.push_back(pt.speedup);
            }
        }
    }
    auto regime_st = [](const std::vector<double> &v) {
        return v.size() > 1 ? stability(v, 0) : 1.0;
    };
    result.high_band_threshold_n = high_n;
    result.size_stability = regime_st(max_p_speedups);
    result.high_stability = regime_st(high_speedups);
    result.intermediate_stability = regime_st(intermediate_speedups);
    // The paper's criterion: High/Intermediate efficiency and a
    // stability range of 0.5 <= St(P, N, 1, 0) <= 1 over data sizes,
    // applied within each performance regime.
    result.scalable = !any_unacceptable &&
                      result.high_stability >= 0.5 &&
                      result.intermediate_stability >= 0.5;
    result.scalable_high = result.scalable && high_n > 0.0;
    return result;
}

} // namespace cedar::method
