/**
 * @file
 * Performance metrics and acceptability bands from Section 4.3.
 *
 * The paper proposes P/2 and P/(2 log2 P), for P >= 8, as the levels
 * denoting *high* and *acceptable* performance: speedups at or above
 * P/2 are high, between the two levels intermediate, and below
 * P/(2 log2 P) unacceptable.
 */

#ifndef CEDARSIM_METHOD_METRICS_HH
#define CEDARSIM_METHOD_METRICS_HH

#include <cmath>
#include <string>

#include "sim/logging.hh"

namespace cedar::method {

/** Speedup of a parallel run over the serial (scalar) time. */
inline double
speedup(double serial_time, double parallel_time)
{
    sim_assert(parallel_time > 0.0, "parallel time must be positive");
    return serial_time / parallel_time;
}

/** Efficiency Ep = speedup / P. */
inline double
efficiency(double spdup, unsigned processors)
{
    sim_assert(processors > 0, "need at least one processor");
    return spdup / static_cast<double>(processors);
}

/** The paper's three performance bands. */
enum class Band
{
    high,         ///< speedup >= P/2 (efficiency >= 1/2)
    intermediate, ///< speedup >= P / (2 log2 P)
    unacceptable, ///< below the acceptable level
};

/** Speedup threshold for the high band. */
inline double
highThreshold(unsigned processors)
{
    return processors / 2.0;
}

/** Speedup threshold for the acceptable (intermediate) band. */
inline double
acceptableThreshold(unsigned processors)
{
    sim_assert(processors >= 2, "thresholds need P >= 2");
    return processors / (2.0 * std::log2(static_cast<double>(processors)));
}

/** Classify a speedup on P processors into a band. */
inline Band
classify(double spdup, unsigned processors)
{
    if (spdup >= highThreshold(processors))
        return Band::high;
    if (spdup >= acceptableThreshold(processors))
        return Band::intermediate;
    return Band::unacceptable;
}

/** Classify from an efficiency value. */
inline Band
classifyEfficiency(double eff, unsigned processors)
{
    return classify(eff * processors, processors);
}

/** Printable band name. */
inline const char *
bandName(Band b)
{
    switch (b) {
      case Band::high: return "high";
      case Band::intermediate: return "intermediate";
      case Band::unacceptable: return "unacceptable";
    }
    return "?";
}

/** Tally of codes per band (Table 6 and Figure 3 summaries). */
struct BandCount
{
    unsigned high = 0;
    unsigned intermediate = 0;
    unsigned unacceptable = 0;

    void
    add(Band b)
    {
        switch (b) {
          case Band::high: ++high; break;
          case Band::intermediate: ++intermediate; break;
          case Band::unacceptable: ++unacceptable; break;
        }
    }

    unsigned total() const { return high + intermediate + unacceptable; }
};

} // namespace cedar::method

#endif // CEDARSIM_METHOD_METRICS_HH
