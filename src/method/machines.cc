/**
 * @file
 * Reference machine data and the CM-5 banded-matvec model.
 *
 * Calibration notes (everything here is pinned by a statement in the
 * paper's text; per-code columns in the scan are unreadable):
 *  - Y-MP/8 rates give In(13,0)=75.3, In(13,2)=29.0, In(13,6)=5.3
 *    (Table 5) under optimal exclusion;
 *  - Y-MP/8 baseline speedups give 0 high / 6 intermediate / 7
 *    unacceptable codes at P=8 (Table 6);
 *  - Y-MP/8 manual efficiencies give ~half high, half intermediate and
 *    exactly one unacceptable code (Figure 3);
 *  - Cray 1 rates give In(13,2)=10.9 and In(13,6)=4.6 (Table 5);
 *  - the Y-MP-to-Cedar harmonic-mean MFLOPS ratio is ~7.4 against the
 *    Cedar automatable rates produced by the Perfect model.
 */

#include "machines.hh"

#include "sim/logging.hh"

namespace cedar::method {

std::vector<double>
ReferenceMachine::autoRates() const
{
    std::vector<double> v;
    v.reserve(codes.size());
    for (const auto &c : codes)
        v.push_back(c.auto_mflops);
    return v;
}

std::vector<double>
ReferenceMachine::autoSpeedups() const
{
    std::vector<double> v;
    v.reserve(codes.size());
    for (const auto &c : codes)
        v.push_back(c.auto_speedup);
    return v;
}

std::vector<double>
ReferenceMachine::manualEfficiencies() const
{
    std::vector<double> v;
    v.reserve(codes.size());
    for (const auto &c : codes)
        v.push_back(c.manual_efficiency);
    return v;
}

const std::vector<std::string> &
perfectCodeNames()
{
    static const std::vector<std::string> names = {
        "ADM",   "ARC2D",  "BDNA",  "DYFESM", "FLO52", "MDG",  "MG3D",
        "OCEAN", "QCD",    "SPEC77", "SPICE", "TRACK", "TRFD"};
    return names;
}

const ReferenceMachine &
ympRef()
{
    static const ReferenceMachine machine = {
        "Cray Y-MP/8",
        8,
        6.0,
        {
            // code, auto MFLOPS, auto speedup, manual efficiency
            {"ADM", 9.5, 1.05, 0.30},
            {"ARC2D", 205.0, 2.40, 0.61},
            {"BDNA", 30.0, 1.00, 0.25},
            {"DYFESM", 12.0, 1.10, 0.28},
            {"FLO52", 83.6, 3.10, 0.68},
            {"MDG", 38.0, 1.50, 0.42},
            {"MG3D", 210.84, 2.80, 0.64},
            {"OCEAN", 20.0, 1.00, 0.23},
            {"QCD", 7.27, 0.95, 0.52},
            {"SPEC77", 50.35, 1.90, 0.55},
            {"SPICE", 2.8, 0.90, 0.12},
            {"TRACK", 7.0, 1.00, 0.19},
            {"TRFD", 43.0, 2.20, 0.58},
        }};
    return machine;
}

const ReferenceMachine &
cray1Ref()
{
    // Single-processor machine: speedup and manual efficiency are not
    // part of the paper's Cray 1 usage (it appears only in Table 5).
    static const ReferenceMachine machine = {
        "Cray 1",
        1,
        12.5,
        {
            {"ADM", 3.3, 1.0, 0.0},
            {"ARC2D", 35.0, 1.0, 0.0},
            {"BDNA", 7.5, 1.0, 0.0},
            {"DYFESM", 5.0, 1.0, 0.0},
            {"FLO52", 30.0, 1.0, 0.0},
            {"MDG", 12.7, 1.0, 0.0},
            {"MG3D", 17.4, 1.0, 0.0},
            {"OCEAN", 3.7, 1.0, 0.0},
            {"QCD", 3.21, 1.0, 0.0},
            {"SPEC77", 15.2, 1.0, 0.0},
            {"SPICE", 1.6, 1.0, 0.0},
            {"TRACK", 2.75, 1.0, 0.0},
            {"TRFD", 14.8, 1.0, 0.0},
        }};
    return machine;
}

double
Cm5Model::mflops(unsigned bandwidth, double n, unsigned processors) const
{
    sim_assert(bandwidth == 3 || bandwidth == 11,
               "the paper reports bandwidths 3 and 11");
    sim_assert(processors >= 1, "need nodes");
    double comm =
        bandwidth == 3 ? comm_fraction_bw3 : comm_fraction_bw11;
    // Larger machines spend relatively more time in the data network.
    double scale_penalty = 1.0;
    if (processors > 32) {
        double doublings = std::log2(processors / 32.0);
        scale_penalty = 1.0 - 0.11 * doublings;
    }
    // Mild problem-size dependence spanning the published 16K..256K
    // window (28->32 MFLOPS for BW=3, 58->67 for BW=11 at 32 nodes).
    double frac = (n - 16384.0) / (262144.0 - 16384.0);
    if (frac < 0.0)
        frac = 0.0;
    if (frac > 1.0)
        frac = 1.0;
    double size_factor = 0.93 + 0.14 * frac;
    return processors * node_mflops * (1.0 - comm) * scale_penalty *
           size_factor;
}

Band
Cm5Model::band(unsigned bandwidth, double n, unsigned processors) const
{
    double spdup = mflops(bandwidth, n, processors) / node_mflops;
    return classify(spdup, processors);
}

} // namespace cedar::method
