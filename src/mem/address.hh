/**
 * @file
 * The Cedar physical address map.
 *
 * Addresses here are 64-bit *word* addresses. The physical space is
 * divided into two equal halves: cluster memory in the lower half and
 * globally shared memory in the upper half (paper, Section 2). Global
 * memory is double-word (8-byte, i.e. one machine word) interleaved
 * across the memory modules, so consecutive word addresses map to
 * consecutive modules. Virtual memory uses 4 KB pages = 512 words.
 */

#ifndef CEDARSIM_MEM_ADDRESS_HH
#define CEDARSIM_MEM_ADDRESS_HH

#include "sim/logging.hh"
#include "sim/types.hh"

namespace cedar::mem {

/** Words per 4 KB virtual-memory page. */
constexpr unsigned words_per_page = 4096 / bytes_per_word;

/** Bit that selects the global half of the physical space. */
constexpr unsigned global_space_bit = 40;

/** Base word address of globally shared memory. */
constexpr Addr global_base = Addr(1) << global_space_bit;

/** True if @p a lies in the globally shared half of the space. */
constexpr bool
isGlobal(Addr a)
{
    return (a & global_base) != 0;
}

/** Make a global address from an offset into shared memory. */
constexpr Addr
globalAddr(Addr offset)
{
    return global_base | offset;
}

/** Offset of a global address within shared memory. */
constexpr Addr
globalOffset(Addr a)
{
    return a & (global_base - 1);
}

/** Memory module owning a global word (double-word interleaving). */
constexpr unsigned
moduleOf(Addr a, unsigned num_modules)
{
    return static_cast<unsigned>(globalOffset(a) % num_modules);
}

/** Page number of a word address (for PFU page-crossing checks). */
constexpr Addr
pageOf(Addr a)
{
    return a / words_per_page;
}

/** True if stepping from @p a by @p stride crosses a 4 KB page. */
constexpr bool
crossesPage(Addr a, Addr stride)
{
    return pageOf(a) != pageOf(a + stride);
}

} // namespace cedar::mem

#endif // CEDARSIM_MEM_ADDRESS_HH
