/**
 * @file
 * Global memory system implementation.
 */

#include "globalmem.hh"

#include "sim/trace.hh"

namespace cedar::mem {

GlobalMemory::GlobalMemory(const std::string &name,
                           const GlobalMemoryParams &params)
    : Named(name), _params(params)
{
    unsigned ports = 1;
    for (unsigned r : _params.stage_radices)
        ports *= r;
    if (ports != _params.num_ports) {
        fatal("stage radices cover ", ports, " ports but num_ports is ",
              _params.num_ports);
    }
    if (_params.num_modules == 0 ||
        _params.num_modules > _params.num_ports) {
        fatal("module count ", _params.num_modules,
              " must be in [1, num_ports=", _params.num_ports, "]");
    }
    _forward = std::make_unique<net::OmegaNetwork>(
        child("fwd"), _params.stage_radices, _params.hop_latency,
        _params.word_occupancy);
    _reverse = std::make_unique<net::OmegaNetwork>(
        child("rev"), _params.stage_radices, _params.hop_latency,
        _params.word_occupancy);
    _modules.reserve(_params.num_modules);
    for (unsigned m = 0; m < _params.num_modules; ++m) {
        _modules.push_back(std::make_unique<MemoryModule>(
            child("mod" + std::to_string(m)),
            _params.module_access_cycles, _params.sync_extra_cycles,
            _params.module_conflict_extra));
    }
}

unsigned
GlobalMemory::networkPortOfModule(unsigned module) const
{
    // Modules are spread evenly over the network output ports so that a
    // reduced-module configuration still exercises the whole fabric.
    return module * (_params.num_ports / _params.num_modules);
}

GmResult
GlobalMemory::read(unsigned port, Addr addr, Tick issue)
{
    sim_assert(port < _params.num_ports, "bad port ", port);
    sim_assert(isGlobal(addr), "read of non-global address ", addr);
    unsigned mod = moduleOf(addr, _params.num_modules);
    unsigned mod_port = networkPortOfModule(mod);

    auto fwd = _forward->traverse(port, mod_port,
                                  _params.read_request_words, issue);
    Tick served = _modules[mod]->access(fwd.tail_arrival);
    auto rev = _reverse->traverse(mod_port, port,
                                  _params.read_response_words, served);
    _reads.inc();
    _read_latency.sample(static_cast<double>(rev.head_arrival - issue));
    DPRINTF(GM, issue, "read port=", port, " addr=", addr, " mod=", mod,
            " latency=", rev.head_arrival - issue);
    return GmResult{rev.head_arrival, fwd.queueing + rev.queueing, {}};
}

Tick
GlobalMemory::write(unsigned port, Addr addr, Tick issue)
{
    sim_assert(port < _params.num_ports, "bad port ", port);
    sim_assert(isGlobal(addr), "write of non-global address ", addr);
    unsigned mod = moduleOf(addr, _params.num_modules);
    unsigned mod_port = networkPortOfModule(mod);

    auto fwd = _forward->traverse(port, mod_port,
                                  _params.write_request_words, issue);
    Tick served = _modules[mod]->access(fwd.tail_arrival);
    _writes.inc();
    DPRINTF(GM, issue, "write port=", port, " addr=", addr, " mod=", mod,
            " served=", served);
    return served;
}

GmResult
GlobalMemory::sync(unsigned port, Addr addr, const SyncOp &op, Tick issue)
{
    sim_assert(port < _params.num_ports, "bad port ", port);
    sim_assert(isGlobal(addr), "sync on non-global address ", addr);
    unsigned mod = moduleOf(addr, _params.num_modules);
    unsigned mod_port = networkPortOfModule(mod);

    // A sync request carries the operation and operand alongside the
    // address: two words forward, two back (old value + status).
    auto fwd = _forward->traverse(port, mod_port, 2, issue);
    SyncResult res;
    Tick served = _modules[mod]->syncAccess(fwd.tail_arrival,
                                            globalOffset(addr), op, res);
    auto rev = _reverse->traverse(mod_port, port, 2, served);
    _syncs.inc();
    DPRINTF(Sync, issue, syncOperateName(op.operate), " port=", port,
            " addr=", addr, " old=", res.old_value, " success=",
            res.success);
    return GmResult{rev.head_arrival, fwd.queueing + rev.queueing, res};
}

void
GlobalMemory::pokeCell(Addr addr, std::int32_t value)
{
    sim_assert(isGlobal(addr), "pokeCell of non-global address ", addr);
    unsigned mod = moduleOf(addr, _params.num_modules);
    _modules[mod]->poke(globalOffset(addr), value);
}

std::int32_t
GlobalMemory::peekCell(Addr addr) const
{
    sim_assert(isGlobal(addr), "peekCell of non-global address ", addr);
    unsigned mod = moduleOf(addr, _params.num_modules);
    return _modules[mod]->peek(globalOffset(addr));
}

Cycles
GlobalMemory::minReadLatency() const
{
    return _forward->minLatency() +
           (_params.read_request_words - 1) * _params.word_occupancy +
           _params.module_access_cycles + _reverse->minLatency();
}

void
GlobalMemory::attachMonitor(MonitorSink *m)
{
    _forward->attachMonitor(m);
    _reverse->attachMonitor(m);
    for (auto &mod : _modules)
        mod->attachMonitor(m);
}

void
GlobalMemory::registerStats(StatRegistry &reg)
{
    reg.addCounter(child("reads"), _reads);
    reg.addCounter(child("writes"), _writes);
    reg.addCounter(child("syncs"), _syncs);
    reg.addSample(child("read_latency"), _read_latency);
    _forward->registerStats(reg);
    _reverse->registerStats(reg);
    for (auto &mod : _modules)
        mod->registerStats(reg);
}

void
GlobalMemory::resetStats()
{
    _forward->resetStats();
    _reverse->resetStats();
    for (auto &m : _modules)
        m->resetStats();
    _reads.reset();
    _writes.reset();
    _syncs.reset();
    _read_latency.reset();
}

} // namespace cedar::mem
