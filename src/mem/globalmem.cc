/**
 * @file
 * Global memory system implementation.
 */

#include "globalmem.hh"

#include "sim/trace.hh"

namespace cedar::mem {

GlobalMemory::GlobalMemory(const std::string &name,
                           const GlobalMemoryParams &params)
    : Named(name), _params(params)
{
    if (_params.topology == "omega") {
        unsigned ports = 1;
        for (unsigned r : _params.stage_radices)
            ports *= r;
        if (ports != _params.num_ports) {
            fatal("stage radices cover ", ports,
                  " ports but num_ports is ", _params.num_ports);
        }
    }
    if (_params.num_modules == 0 ||
        _params.num_modules > _params.num_ports) {
        fatal("module count ", _params.num_modules,
              " must be in [1, num_ports=", _params.num_ports, "]");
    }
    net::TopologyParams net_params;
    net_params.kind = _params.topology;
    net_params.num_ports = _params.num_ports;
    net_params.stage_radices = _params.stage_radices;
    net_params.fat_tree_arity = _params.fat_tree_arity;
    net_params.crossbar_arb_cycles = _params.crossbar_arb_cycles;
    net_params.hop_latency = _params.hop_latency;
    net_params.word_occupancy = _params.word_occupancy;
    net_params.port_queue_words = _params.port_queue_words;
    if (_params.combined_net) {
        // One fabric carries both directions; _reverse stays null and
        // reverseNet() aliases the forward network.
        _forward = net::makeTopology(child("net"), net_params);
    } else {
        _forward = net::makeTopology(child("fwd"), net_params);
        _reverse = net::makeTopology(child("rev"), net_params);
    }
    _modules.reserve(_params.num_modules);
    for (unsigned m = 0; m < _params.num_modules; ++m) {
        _modules.push_back(std::make_unique<MemoryModule>(
            child("mod" + std::to_string(m)),
            _params.module_access_cycles, _params.sync_extra_cycles,
            _params.module_conflict_extra));
    }
    _spare = std::make_unique<MemoryModule>(
        child("spare"), _params.module_access_cycles,
        _params.sync_extra_cycles, _params.module_conflict_extra);
}

void
GlobalMemory::failModule(unsigned m)
{
    sim_assert(m < _params.num_modules, "failModule: module ", m,
               " out of range [0, ", _params.num_modules, ")");
    sim_assert(_failed_module < 0,
               "only one module failure is supported (module ",
               _failed_module, " already remapped to the spare)");
    // ECC rebuild: the spare takes over the failed module's address
    // slice with its functional contents reconstructed.
    for (const auto &[addr, value] : _modules[m]->cells())
        _spare->poke(addr, value);
    _failed_module = static_cast<int>(m);
    inform("memory module ", m, " failed; remapped to spare module");
}

unsigned
GlobalMemory::networkPortOfModule(unsigned module) const
{
    // Modules are spread evenly over the network output ports so that a
    // reduced-module configuration still exercises the whole fabric.
    return module * (_params.num_ports / _params.num_modules);
}

GmResult
GlobalMemory::read(unsigned port, Addr addr, Tick issue)
{
    sim_assert(port < _params.num_ports, "bad port ", port);
    sim_assert(isGlobal(addr), "read of non-global address ", addr);
    unsigned mod = moduleOf(addr, _params.num_modules);
    unsigned mod_port = networkPortOfModule(mod);

    auto fwd = _forward->traverse(port, mod_port,
                                  _params.read_request_words, issue);
    Tick served = serving(mod).access(fwd.tail_arrival);
    auto rev = reverseNet().traverse(mod_port, port,
                                     _params.read_response_words, served);
    _reads.inc();
    _read_latency.sample(static_cast<double>(rev.head_arrival - issue));
    DPRINTF(GM, issue, "read port=", port, " addr=", addr, " mod=", mod,
            " latency=", rev.head_arrival - issue);
    return GmResult{rev.head_arrival, fwd.queueing + rev.queueing, {}};
}

Tick
GlobalMemory::write(unsigned port, Addr addr, Tick issue)
{
    sim_assert(port < _params.num_ports, "bad port ", port);
    sim_assert(isGlobal(addr), "write of non-global address ", addr);
    unsigned mod = moduleOf(addr, _params.num_modules);
    unsigned mod_port = networkPortOfModule(mod);

    auto fwd = _forward->traverse(port, mod_port,
                                  _params.write_request_words, issue);
    Tick served = serving(mod).access(fwd.tail_arrival);
    _writes.inc();
    DPRINTF(GM, issue, "write port=", port, " addr=", addr, " mod=", mod,
            " served=", served);
    return served;
}

GmResult
GlobalMemory::sync(unsigned port, Addr addr, const SyncOp &op, Tick issue)
{
    sim_assert(port < _params.num_ports, "bad port ", port);
    sim_assert(isGlobal(addr), "sync on non-global address ", addr);
    unsigned mod = moduleOf(addr, _params.num_modules);
    unsigned mod_port = networkPortOfModule(mod);

    // A sync request carries the operation and operand alongside the
    // address: two words forward, two back (old value + status).
    auto fwd = _forward->traverse(port, mod_port, 2, issue);
    SyncResult res;
    // A timed-out sync still occupies the bank and processor, but the
    // operation is not performed; the requester sees timed_out and
    // must reissue (the runtime lock path retries with backoff).
    bool perform = !(_faults && _faults->syncTimeout());
    Tick served = serving(mod).syncAccess(
        fwd.tail_arrival, globalOffset(addr), op, res, perform);
    auto rev = reverseNet().traverse(mod_port, port, 2, served);
    _syncs.inc();
    DPRINTF(Sync, issue, syncOperateName(op.operate), " port=", port,
            " addr=", addr, " old=", res.old_value, " success=",
            res.success, " timed_out=", res.timed_out);
    return GmResult{rev.head_arrival, fwd.queueing + rev.queueing, res};
}

void
GlobalMemory::pokeCell(Addr addr, std::int32_t value)
{
    sim_assert(isGlobal(addr), "pokeCell of non-global address ", addr);
    unsigned mod = moduleOf(addr, _params.num_modules);
    serving(mod).poke(globalOffset(addr), value);
}

std::int32_t
GlobalMemory::peekCell(Addr addr) const
{
    sim_assert(isGlobal(addr), "peekCell of non-global address ", addr);
    unsigned mod = moduleOf(addr, _params.num_modules);
    return serving(mod).peek(globalOffset(addr));
}

Cycles
GlobalMemory::minReadLatency() const
{
    return _forward->minLatency() +
           (_params.read_request_words - 1) * _params.word_occupancy +
           _params.module_access_cycles + reverseNet().minLatency();
}

void
GlobalMemory::attachMonitor(MonitorSink *m)
{
    _forward->attachMonitor(m);
    if (_reverse)
        _reverse->attachMonitor(m);
    for (auto &mod : _modules)
        mod->attachMonitor(m);
    _spare->attachMonitor(m);
}

void
GlobalMemory::attachFaults(FaultInjector *f)
{
    _faults = f;
    _forward->attachFaults(f);
    if (_reverse)
        _reverse->attachFaults(f);
    for (auto &mod : _modules)
        mod->attachFaults(f);
    _spare->attachFaults(f);
}

void
GlobalMemory::registerStats(StatRegistry &reg)
{
    reg.addCounter(child("reads"), _reads);
    reg.addCounter(child("writes"), _writes);
    reg.addCounter(child("syncs"), _syncs);
    reg.addSample(child("read_latency"), _read_latency);
    _forward->registerStats(reg);
    if (_reverse)
        _reverse->registerStats(reg);
    for (auto &mod : _modules)
        mod->registerStats(reg);
    _spare->registerStats(reg);
}

void
GlobalMemory::resetStats()
{
    _forward->resetStats();
    if (_reverse)
        _reverse->resetStats();
    for (auto &m : _modules)
        m->resetStats();
    _spare->resetStats();
    _reads.reset();
    _writes.reset();
    _syncs.reset();
    _read_latency.reset();
}

void
GlobalMemory::saveState(CheckpointWriter &w) const
{
    auto &sec = w.section(name());
    sec.counter("reads", _reads);
    sec.counter("writes", _writes);
    sec.counter("syncs", _syncs);
    sec.sample("read_latency", _read_latency);
    sec.i64("failed_module", _failed_module);
    _forward->saveState(w);
    if (_reverse)
        _reverse->saveState(w);
    for (const auto &m : _modules)
        m->saveState(w);
    _spare->saveState(w);
}

void
GlobalMemory::restoreState(const CheckpointReader &r)
{
    const auto &sec = r.section(name());
    sec.counter("reads", _reads);
    sec.counter("writes", _writes);
    sec.counter("syncs", _syncs);
    sec.sample("read_latency", _read_latency);
    auto failed = sec.i64("failed_module");
    if (failed < -1 || failed >= static_cast<std::int64_t>(numModules())) {
        checkpointError(name(), "snapshot failed_module " +
                                    std::to_string(failed) +
                                    " is out of range for " +
                                    std::to_string(numModules()) +
                                    " modules");
    }
    _failed_module = static_cast<int>(failed);
    _forward->restoreState(r);
    if (_reverse)
        _reverse->restoreState(r);
    for (auto &m : _modules)
        m->restoreState(r);
    _spare->restoreState(r);
}

} // namespace cedar::mem
