/**
 * @file
 * The Cedar global memory system: interleaved memory modules reached
 * through a forward interconnect, with responses returning through an
 * independent reverse interconnect (or, in the combined variant, back
 * through the same fabric). Cedar as built used two omega networks;
 * the scaled machines select any Topology family. This component owns
 * the fabrics and modules and provides the timed read/write/sync
 * interface the processors (and prefetch units) use.
 */

#ifndef CEDARSIM_MEM_GLOBALMEM_HH
#define CEDARSIM_MEM_GLOBALMEM_HH

#include <memory>
#include <vector>

#include "mem/address.hh"
#include "mem/module.hh"
#include "mem/syncops.hh"
#include "net/topology.hh"
#include "sim/fault.hh"
#include "sim/named.hh"
#include "sim/stats.hh"

namespace cedar::mem {

/** Construction parameters for the global memory system. */
struct GlobalMemoryParams
{
    /** Processor-side ports (one per CE on Cedar: 32). */
    unsigned num_ports = 32;
    /** Per-stage switch radices; product must equal num_ports. */
    std::vector<unsigned> stage_radices{8, 4};
    /** Cycles for a packet head to cross one network stage. */
    Cycles hop_latency = 1;
    /** Cycles one word occupies a network port. */
    Cycles word_occupancy = 1;
    /** Memory modules (paper: double-word interleaved). */
    unsigned num_modules = 32;
    /** Bank busy time per access. */
    Cycles module_access_cycles = 2;
    /** Extra busy time for a synchronization instruction. */
    Cycles sync_extra_cycles = 2;
    /** Extra bank busy time when a request finds the bank occupied
     *  (arbitration/recirculation loss; calibrated against Table 1). */
    Cycles module_conflict_extra = 2;
    /** Words in a read-request packet (routing word incl. address). */
    unsigned read_request_words = 1;
    /** Words in a read-response packet. */
    unsigned read_response_words = 1;
    /** Words in a write packet (routing word + data). */
    unsigned write_request_words = 2;
    /** Per-port network queue capacity in words (Cedar's switches
     *  buffer two words; 0 = unbounded). */
    unsigned port_queue_words = 2;
    /** Interconnect family: "omega", "fattree", or "crossbar". For
     *  omega the stage radices define the shape; the other families
     *  take their shape from num_ports. */
    std::string topology = "omega";
    /** Fat tree switch arity (0 = largest of 8/4/2 that fits). */
    unsigned fat_tree_arity = 0;
    /** Crossbar: fixed arbitration cycles paid per packet. */
    Cycles crossbar_arb_cycles = 0;
    /** Route responses back through the forward fabric (one combined
     *  network carrying both directions) instead of a dedicated
     *  reverse network. */
    bool combined_net = false;
};

/** Timed outcome of a global memory operation. */
struct GmResult
{
    /** Tick the response head reaches the requesting port. */
    Tick data_at_port = 0;
    /** Total network queueing suffered (forward + reverse). */
    Cycles queueing = 0;
    /** Functional result for sync operations. */
    SyncResult sync{0, false};
};

/** The globally shared memory plus its two networks. */
class GlobalMemory : public Named, public Checkpointable
{
  public:
    GlobalMemory(const std::string &name, const GlobalMemoryParams &params);

    /**
     * Timed read of one word.
     * @param port  requesting processor port
     * @param addr  global word address
     * @param issue tick the request enters the forward network
     */
    GmResult read(unsigned port, Addr addr, Tick issue);

    /**
     * Timed write of one word. Writes are posted: the CE never stalls on
     * them, but the packet still occupies network and bank resources.
     * @return tick the write completes at the module
     */
    Tick write(unsigned port, Addr addr, Tick issue);

    /** Timed synchronization instruction (round trip + functional op). */
    GmResult sync(unsigned port, Addr addr, const SyncOp &op, Tick issue);

    /** Initialize a functional cell (e.g. a loop-iteration counter). */
    void pokeCell(Addr addr, std::int32_t value);

    /** Read a functional cell without timing. */
    std::int32_t peekCell(Addr addr) const;

    /** Uncontended round-trip latency for a read (network + module). */
    Cycles minReadLatency() const;

    /**
     * Take memory module @p m out of service: its functional contents
     * are ECC-rebuilt onto the always-present spare module, and all
     * subsequent traffic for @p m is served by the spare (degraded
     * mode, not an error). Only one module may fail per run.
     */
    void failModule(unsigned m);

    /** Index of the failed module, or -1 when all are healthy. */
    int failedModule() const { return _failed_module; }

    unsigned numPorts() const { return _params.num_ports; }
    unsigned numModules() const { return _params.num_modules; }

    const net::Topology &forwardNet() const { return *_forward; }
    net::Topology &forwardNet() { return *_forward; }

    /** The response fabric: the forward network itself when combined. */
    const net::Topology &
    reverseNet() const
    {
        return _reverse ? *_reverse : *_forward;
    }

    net::Topology &reverseNet() { return _reverse ? *_reverse : *_forward; }

    /** True when requests and responses share one combined fabric. */
    bool combinedNet() const { return _reverse == nullptr; }

    const MemoryModule &module(unsigned m) const { return *_modules.at(m); }
    const MemoryModule &spareModule() const { return *_spare; }

    /** Total reads served (for bandwidth accounting). */
    std::uint64_t readCount() const { return _reads.value(); }
    std::uint64_t writeCount() const { return _writes.value(); }
    std::uint64_t syncCount() const { return _syncs.value(); }

    /** Distribution of read round-trip latencies seen at the ports. */
    const SampleStat &readLatencyStat() const { return _read_latency; }

    /**
     * Attach a monitor to the whole memory system: both networks and
     * every module begin posting events (nullptr detaches all).
     */
    void attachMonitor(MonitorSink *m);

    /**
     * Attach a fault injector to the whole memory system: both
     * networks start rolling for packet corruption and every module
     * (including the spare) for ECC events; sync requests may time
     * out. nullptr detaches all.
     */
    void attachFaults(FaultInjector *f);

    /** Register memory-system statistics (networks and modules too). */
    void registerStats(StatRegistry &reg);

    void resetStats();

    /**
     * Own counters plus both networks and every module (spare
     * included). Restores the failed-module index directly — the
     * spare's cells come from its own section, so no ECC rebuild is
     * re-run on restore.
     */
    void saveState(CheckpointWriter &w) const override;
    void restoreState(const CheckpointReader &r) override;

  private:
    unsigned networkPortOfModule(unsigned module) const;

    /** Module that actually serves traffic for logical module @p m. */
    MemoryModule &
    serving(unsigned m)
    {
        return static_cast<int>(m) == _failed_module ? *_spare
                                                     : *_modules[m];
    }

    const MemoryModule &
    serving(unsigned m) const
    {
        return static_cast<int>(m) == _failed_module ? *_spare
                                                     : *_modules[m];
    }

    GlobalMemoryParams _params;
    std::unique_ptr<net::Topology> _forward;
    /** Null when combined_net: responses ride the forward fabric. */
    std::unique_ptr<net::Topology> _reverse;
    std::vector<std::unique_ptr<MemoryModule>> _modules;
    /** Hot spare that takes over a failed module's address slice. */
    std::unique_ptr<MemoryModule> _spare;
    int _failed_module = -1;
    FaultInjector *_faults = nullptr;
    Counter _reads;
    Counter _writes;
    Counter _syncs;
    SampleStat _read_latency;
};

} // namespace cedar::mem

#endif // CEDARSIM_MEM_GLOBALMEM_HH
