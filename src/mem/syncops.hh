/**
 * @file
 * Cedar memory-based synchronization instructions.
 *
 * Multistage networks make conventional locked bus cycles impossible, so
 * Cedar executes indivisible synchronization instructions *inside* each
 * memory module, on a small synchronization processor. Besides plain
 * Test-And-Set, the Zhu-Yew instructions implement Test-And-Operate: the
 * Test is any relational comparison on 32-bit data and the Operate is a
 * Read, Write, Add, Subtract, or logical operation, performed only when
 * the test succeeds. A CE reaches these through memory-mapped
 * instructions initiated by a Test-And-Set to a global address.
 */

#ifndef CEDARSIM_MEM_SYNCOPS_HH
#define CEDARSIM_MEM_SYNCOPS_HH

#include <cstdint>
#include <string>

namespace cedar::mem {

/** Relational test applied to the memory cell before operating. */
enum class SyncTest : std::uint8_t
{
    always, ///< unconditional (plain fetch-and-op)
    eq,     ///< cell == test operand
    ne,     ///< cell != test operand
    lt,     ///< cell <  test operand
    le,     ///< cell <= test operand
    gt,     ///< cell >  test operand
    ge,     ///< cell >= test operand
};

/** Operation applied to the cell when the test succeeds. */
enum class SyncOperate : std::uint8_t
{
    read,      ///< return the cell, leave it unchanged
    write,     ///< store the operand
    add,       ///< cell += operand
    subtract,  ///< cell -= operand
    logic_and, ///< cell &= operand
    logic_or,  ///< cell |= operand
    set_one,   ///< Test-And-Set: store 1
};

/** A complete synchronization instruction as shipped to a module. */
struct SyncOp
{
    SyncTest test = SyncTest::always;
    std::int32_t test_operand = 0;
    SyncOperate operate = SyncOperate::read;
    std::int32_t operand = 0;

    /** Classic Test-And-Set on a lock cell. */
    static SyncOp
    testAndSet()
    {
        return SyncOp{SyncTest::eq, 0, SyncOperate::set_one, 0};
    }

    /** Unconditional fetch-and-add (loop self-scheduling primitive). */
    static SyncOp
    fetchAndAdd(std::int32_t delta)
    {
        return SyncOp{SyncTest::always, 0, SyncOperate::add, delta};
    }

    /** Conditional decrement used by counting barriers. */
    static SyncOp
    testGtAndSub(std::int32_t bound, std::int32_t delta)
    {
        return SyncOp{SyncTest::gt, bound, SyncOperate::subtract, delta};
    }
};

/** Outcome of executing a SyncOp on a cell. */
struct SyncResult
{
    std::int32_t old_value = 0; ///< cell contents before the operation
    bool success = false; ///< whether the test passed (op performed)
    /** The synchronization processor timed out: the operation was NOT
     *  performed (cell untouched, old_value meaningless) and the
     *  requester must retry. */
    bool timed_out = false;
};

/**
 * Functional semantics of a SyncOp, shared by the module model and the
 * unit tests. Indivisibility is guaranteed by the caller (one sync
 * processor per module, FCFS).
 */
inline SyncResult
applySyncOp(std::int32_t &cell, const SyncOp &op)
{
    std::int32_t old = cell;
    bool pass = false;
    switch (op.test) {
      case SyncTest::always: pass = true; break;
      case SyncTest::eq: pass = cell == op.test_operand; break;
      case SyncTest::ne: pass = cell != op.test_operand; break;
      case SyncTest::lt: pass = cell < op.test_operand; break;
      case SyncTest::le: pass = cell <= op.test_operand; break;
      case SyncTest::gt: pass = cell > op.test_operand; break;
      case SyncTest::ge: pass = cell >= op.test_operand; break;
    }
    if (pass) {
        switch (op.operate) {
          case SyncOperate::read: break;
          case SyncOperate::write: cell = op.operand; break;
          case SyncOperate::add: cell += op.operand; break;
          case SyncOperate::subtract: cell -= op.operand; break;
          case SyncOperate::logic_and: cell &= op.operand; break;
          case SyncOperate::logic_or: cell |= op.operand; break;
          case SyncOperate::set_one: cell = 1; break;
        }
    }
    return SyncResult{old, pass};
}

/** Human-readable name for diagnostics. */
std::string syncOperateName(SyncOperate op);

} // namespace cedar::mem

#endif // CEDARSIM_MEM_SYNCOPS_HH
