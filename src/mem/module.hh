/**
 * @file
 * One global memory module: a bank with deterministic service time,
 * a synchronization processor, and sparse functional storage for the
 * words that synchronization and explicit data traffic actually touch.
 */

#ifndef CEDARSIM_MEM_MODULE_HH
#define CEDARSIM_MEM_MODULE_HH

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "mem/syncops.hh"
#include "sim/checkpoint.hh"
#include "sim/fault.hh"
#include "sim/named.hh"
#include "sim/probes.hh"
#include "sim/statreg.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace cedar::mem {

/** A single interleaved memory module. */
class MemoryModule : public Named, public Checkpointable
{
  public:
    /**
     * @param name           component name
     * @param access_cycles  bank busy time per ordinary access
     * @param sync_cycles    extra busy time for a sync instruction
     * @param conflict_extra extra busy time when a request finds the
     *                       bank occupied (arbitration/recirculation
     *                       loss; Turner attributes Cedar's observed
     *                       degradation to implementation constraints
     *                       of this kind, and Table 1 calibrates it)
     */
    MemoryModule(const std::string &name, Cycles access_cycles,
                 Cycles sync_cycles, Cycles conflict_extra = 0)
        : Named(name), _access_cycles(access_cycles),
          _sync_cycles(sync_cycles), _conflict_extra(conflict_extra)
    {
    }

    /** Extra bank busy time to scrub a corrected single-bit error. */
    static constexpr Cycles ecc_correct_cycles = 1;
    /** Extra turnaround before a detected double-bit error's re-read. */
    static constexpr Cycles ecc_retry_cycles = 2;

    /**
     * Serve an ordinary read or write that arrives at @p arrival.
     * @return tick at which the data (or ack) leaves the module
     */
    Tick
    access(Tick arrival)
    {
        Tick start = std::max(arrival, _bank_free);
        bool conflicted = start > arrival;
        _wait.sample(static_cast<double>(start - arrival));
        _bank_free = start + _access_cycles +
                     (conflicted ? _conflict_extra : 0) +
                     eccPenalty();
        _accesses.inc();
        if (conflicted)
            _conflicts.inc();
        if (_monitor) {
            auto wait = static_cast<std::int64_t>(start - arrival);
            _monitor->record(start,
                             conflicted ? Signal::module_conflict
                                        : Signal::module_service,
                             wait);
        }
        return _bank_free;
    }

    /**
     * Serve a synchronization instruction: bank access plus the
     * read-modify-write on the sync processor, indivisibly.
     *
     * @param arrival tick the request reaches the module
     * @param addr    target word
     * @param op      the Test-And-Operate instruction
     * @param[out] result functional outcome
     * @param perform false models a synchronization-processor timeout:
     *                the bank and processor are occupied as usual but
     *                the operation is NOT applied and @p result says so
     * @return tick at which the response leaves the module
     */
    Tick
    syncAccess(Tick arrival, Addr addr, const SyncOp &op,
               SyncResult &result, bool perform = true)
    {
        Tick start = std::max(arrival, _bank_free);
        bool conflicted = start > arrival;
        _wait.sample(static_cast<double>(start - arrival));
        _bank_free = start + _access_cycles + _sync_cycles +
                     (conflicted ? _conflict_extra : 0) +
                     eccPenalty();
        _sync_ops.inc();
        if (conflicted)
            _conflicts.inc();
        if (perform) {
            result = applySyncOp(_cells[addr], op);
        } else {
            result = SyncResult{};
            result.timed_out = true;
        }
        if (_monitor)
            _monitor->record(start, Signal::sync_op, result.old_value);
        return _bank_free;
    }

    /** Direct functional peek (debug / test). */
    std::int32_t
    peek(Addr addr) const
    {
        auto it = _cells.find(addr);
        return it == _cells.end() ? 0 : it->second;
    }

    /** Direct functional poke (initialization). */
    void poke(Addr addr, std::int32_t value) { _cells[addr] = value; }

    /** All functional cells, for ECC-rebuilding onto a spare module. */
    const std::unordered_map<Addr, std::int32_t> &cells() const
    {
        return _cells;
    }

    std::uint64_t accessCount() const { return _accesses.value(); }
    std::uint64_t syncOpCount() const { return _sync_ops.value(); }
    std::uint64_t conflictCount() const { return _conflicts.value(); }
    std::uint64_t eccCorrected() const { return _ecc_corrected.value(); }
    std::uint64_t eccRetried() const { return _ecc_retried.value(); }
    const SampleStat &waitStat() const { return _wait; }
    Tick bankFree() const { return _bank_free; }

    /** Post bank-service events to @p m (nullptr detaches). */
    void attachMonitor(MonitorSink *m) { _monitor = m; }

    /** Attach a fault injector: accesses start rolling for ECC events
     *  (nullptr detaches). */
    void attachFaults(FaultInjector *f) { _faults = f; }

    /** Register this module's statistics under its component name. */
    void
    registerStats(StatRegistry &reg)
    {
        reg.addCounter(child("accesses"), _accesses);
        reg.addCounter(child("sync_ops"), _sync_ops);
        reg.addCounter(child("conflicts"), _conflicts);
        reg.addCounter(child("ecc_corrected"), _ecc_corrected);
        reg.addCounter(child("ecc_retried"), _ecc_retried);
        reg.addSample(child("wait"), _wait);
    }

    void
    resetStats()
    {
        _accesses.reset();
        _sync_ops.reset();
        _ecc_corrected.reset();
        _ecc_retried.reset();
        _wait.reset();
    }

    void
    saveState(CheckpointWriter &w) const override
    {
        auto &sec = w.section(name());
        sec.u64("bank_free", _bank_free);
        sec.counter("accesses", _accesses);
        sec.counter("sync_ops", _sync_ops);
        sec.counter("conflicts", _conflicts);
        sec.counter("ecc_corrected", _ecc_corrected);
        sec.counter("ecc_retried", _ecc_retried);
        sec.sample("wait", _wait);
        // Functional cells, sorted by address so the blob (and the
        // snapshot's CRC) is independent of hash-map iteration order.
        std::vector<std::pair<Addr, std::int32_t>> cells(_cells.begin(),
                                                         _cells.end());
        std::sort(cells.begin(), cells.end());
        std::string blob;
        blob.reserve(cells.size() * 12);
        for (const auto &[addr, value] : cells) {
            for (int i = 0; i < 8; ++i)
                blob.push_back(char((addr >> (8 * i)) & 0xFF));
            auto uv = static_cast<std::uint32_t>(value);
            for (int i = 0; i < 4; ++i)
                blob.push_back(char((uv >> (8 * i)) & 0xFF));
        }
        sec.u64("cell_count", cells.size());
        sec.bytes("cells", blob);
    }

    void
    restoreState(const CheckpointReader &r) override
    {
        const auto &sec = r.section(name());
        _bank_free = sec.u64("bank_free");
        sec.counter("accesses", _accesses);
        sec.counter("sync_ops", _sync_ops);
        sec.counter("conflicts", _conflicts);
        sec.counter("ecc_corrected", _ecc_corrected);
        sec.counter("ecc_retried", _ecc_retried);
        sec.sample("wait", _wait);
        std::uint64_t count = sec.u64("cell_count");
        const std::string &blob = sec.bytes("cells");
        if (blob.size() != count * 12) {
            checkpointError(name(), "cell blob is " +
                                        std::to_string(blob.size()) +
                                        " bytes but cell_count says " +
                                        std::to_string(count * 12));
        }
        _cells.clear();
        _cells.reserve(count);
        const auto *p =
            reinterpret_cast<const unsigned char *>(blob.data());
        for (std::uint64_t c = 0; c < count; ++c, p += 12) {
            Addr addr = 0;
            for (int i = 0; i < 8; ++i)
                addr |= Addr(p[i]) << (8 * i);
            std::uint32_t uv = 0;
            for (int i = 0; i < 4; ++i)
                uv |= std::uint32_t(p[8 + i]) << (8 * i);
            _cells[addr] = static_cast<std::int32_t>(uv);
        }
    }

  private:
    /**
     * Roll the ECC outcome for one bank access: single-bit errors are
     * corrected in place for a scrub penalty; double-bit errors are
     * detected and the whole bank access is repeated.
     */
    Cycles
    eccPenalty()
    {
        if (!_faults)
            return 0;
        switch (_faults->memEccEvent()) {
          case 1:
            _ecc_corrected.inc();
            return ecc_correct_cycles;
          case 2:
            _ecc_retried.inc();
            return ecc_retry_cycles + _access_cycles;
          default:
            return 0;
        }
    }

    Cycles _access_cycles;
    Cycles _sync_cycles;
    Cycles _conflict_extra;
    Tick _bank_free = 0;
    Counter _accesses;
    Counter _sync_ops;
    Counter _conflicts;
    Counter _ecc_corrected;
    Counter _ecc_retried;
    SampleStat _wait;
    MonitorSink *_monitor = nullptr;
    FaultInjector *_faults = nullptr;
    std::unordered_map<Addr, std::int32_t> _cells;
};

} // namespace cedar::mem

#endif // CEDARSIM_MEM_MODULE_HH
