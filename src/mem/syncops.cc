/**
 * @file
 * Diagnostic names for synchronization operations.
 */

#include "syncops.hh"

namespace cedar::mem {

std::string
syncOperateName(SyncOperate op)
{
    switch (op) {
      case SyncOperate::read: return "read";
      case SyncOperate::write: return "write";
      case SyncOperate::add: return "add";
      case SyncOperate::subtract: return "subtract";
      case SyncOperate::logic_and: return "and";
      case SyncOperate::logic_or: return "or";
      case SyncOperate::set_one: return "set";
    }
    return "unknown";
}

} // namespace cedar::mem
