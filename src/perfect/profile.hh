/**
 * @file
 * Workload-profile models of the thirteen Perfect Benchmarks codes.
 *
 * The Perfect codes themselves are large Fortran applications we
 * cannot run; what Tables 3-6 need from them is how each code's
 * execution time responds to Cedar's mechanisms. A WorkloadProfile
 * captures the structural characterization the paper discusses per
 * code — parallel coverage, loop granularity, vectorizability, memory
 * placement mix, scalar-access and I/O domination — and the
 * PerfectModel (model.hh) evaluates execution time for each
 * restructuring level on top of machine costs measured from the
 * simulator.
 *
 * Each profile also carries calibration targets taken from the paper
 * (or reconstructed from its stated aggregates where the scanned
 * per-code table is unreadable); DESIGN.md and EXPERIMENTS.md list
 * them.
 */

#ifndef CEDARSIM_PERFECT_PROFILE_HH
#define CEDARSIM_PERFECT_PROFILE_HH

#include <string>
#include <vector>

namespace cedar::perfect {

/** Structural characterization of one Perfect code on Cedar. */
struct WorkloadProfile
{
    std::string name;

    /** Uniprocessor scalar execution time on one CE, seconds. */
    double serial_seconds = 0.0;
    /** Of which: serial I/O time (BDNA's formatted I/O, MG3D's file
     *  I/O before its elimination). */
    double io_seconds = 0.0;

    /** Speedup of parallel work from vectorization (per CE). */
    double vector_gain = 2.0;
    /** Processors the code's parallelism can actually keep busy
     *  (DYFESM's limited parallelism, QCD's serial generator). */
    unsigned usable_processors = 32;
    /** Mean serial-work microseconds per parallel-loop iteration:
     *  the granularity that decides self-scheduling overhead. */
    double loop_body_us = 2000.0;
    /** Major parallel loop nests entered per run (startup costs). */
    double parallel_loops = 200.0;
    /** Multicluster barrier episodes per run (FLO52's sequences). */
    double barriers = 0.0;

    /** Fraction of parallel-work data that is loop-local / privatized
     *  into cluster memory (prefetch-insensitive). */
    double local_fraction = 0.4;
    /** Fraction dominated by scalar global accesses (TRACK). */
    double scalar_fraction = 0.1;
    /** Remaining fraction streams vectors from global memory and is
     *  what prefetching accelerates. */
    double
    globalVectorFraction() const
    {
        return 1.0 - local_fraction - scalar_fraction;
    }

    // ---- calibration targets (paper / reconstructed aggregates) ----

    /** Speed improvement of the automatable version at 32 CEs. */
    double target_auto_speedup = 4.0;
    /** MFLOPS of the automatable version (fixes the flop count). */
    double target_auto_mflops = 3.0;
    /** Speed improvement of the KAP/Cedar compiled version. */
    double target_kap_speedup = 1.2;
    /** KAP version confined to one cluster (paper: done for some codes
     *  to avoid intercluster overhead). */
    bool kap_single_cluster = false;
    /** Hand-optimized execution time, seconds (0 = no hand version;
     *  Table 4 plus the in-text FLO52/DYFESM/SPICE results). */
    double hand_seconds = 0.0;

    /** Total floating-point operations (Cray HPM convention). */
    double
    flopCount() const
    {
        // MFLOPS x automatable seconds.
        return target_auto_mflops * 1e6 *
               (serial_seconds / target_auto_speedup);
    }
};

/** The thirteen Perfect Benchmarks profiles, canonical order. */
const std::vector<WorkloadProfile> &perfectSuite();

/** Look up one profile by name. */
const WorkloadProfile &perfectCode(const std::string &name);

} // namespace cedar::perfect

#endif // CEDARSIM_PERFECT_PROFILE_HH
