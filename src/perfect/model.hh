/**
 * @file
 * Execution-time model for the Perfect codes on Cedar.
 *
 * The model layers a workload profile (profile.hh) over machine costs
 * measured from the simulator (runtime overheads, the prefetch and
 * placement speed ratios from the Table 1 kernels) and evaluates the
 * restructuring levels of Tables 3 and 4:
 *
 *   serial             one CE, scalar
 *   kap                KAP/Cedar compiled (1988 restructurer)
 *   automatable        hand-applied but automatable transformations,
 *                      prefetch + Cedar synchronization
 *   automatable_nosync same, self-scheduling via Test-And-Set locks
 *   automatable_nopref same as nosync minus compiler prefetch
 *   hand               per-code algorithmic rewrites (Table 4)
 *
 * For each code the parallel coverage fraction is solved so the
 * automatable (and KAP) versions hit their calibration targets; the
 * *differences* between levels then follow from the code's structure
 * and the measured machine costs, which is exactly the property the
 * paper's ablation columns probe.
 */

#ifndef CEDARSIM_PERFECT_MODEL_HH
#define CEDARSIM_PERFECT_MODEL_HH

#include <string>
#include <vector>

#include "perfect/profile.hh"

namespace cedar::perfect {

/** Machine costs consumed by the model; measured on the simulator. */
struct MachineCosts
{
    /** Processors in the full machine. */
    unsigned processors = 32;
    /** XDOALL startup, microseconds (paper / microbenchmark: ~90). */
    double xdoall_startup_us = 90.0;
    /** Iteration fetch with Cedar synchronization (~30 us). */
    double iter_fetch_us = 30.0;
    /** Iteration fetch with the Test-And-Set lock protocol. */
    double iter_fetch_nosync_us = 90.0;
    /** One multicluster barrier episode at 32 CEs, microseconds. */
    double barrier_us = 60.0;
    /** Slowdown of global vector access without prefetch (Table 1:
     *  GM/pref over GM/no-pref, ~3.4x). */
    double nopref_slowdown = 3.4;
};

/** Restructuring levels the paper evaluates. */
enum class Level
{
    serial,
    kap,
    automatable,
    automatable_nosync,
    automatable_nopref,
    hand,
};

/** Printable level name. */
const char *levelName(Level level);

/** One code's evaluated execution record. */
struct CodeResult
{
    std::string code;
    Level level;
    double seconds;
    double mflops;
    double speedup;
};

/** Evaluates Perfect profiles against machine costs. */
class PerfectModel
{
  public:
    explicit PerfectModel(const MachineCosts &costs = MachineCosts{});

    /** Evaluate one code at one restructuring level. */
    CodeResult evaluate(const WorkloadProfile &profile,
                        Level level) const;

    /** Evaluate the whole suite at one level, canonical order. */
    std::vector<CodeResult> evaluateSuite(Level level) const;

    /** Automatable-version MFLOPS vector (Table 5 / harmonic mean). */
    std::vector<double> autoRates() const;

    /** Automatable-version speedups (Table 6 bands). */
    std::vector<double> autoSpeedups() const;

    /** Best-effort (hand where available) speedups (Figure 3). */
    std::vector<double> manualSpeedups() const;

    const MachineCosts &costs() const { return _costs; }

  private:
    /** Parallel-coverage fraction solved for a target speedup. */
    double solveFraction(const WorkloadProfile &p, double target_speedup,
                         unsigned processors, double vec_gain) const;

    /** Scheduling overhead for a given coverage, seconds. */
    double overheadSeconds(const WorkloadProfile &p, double fraction,
                           unsigned processors, double fetch_us) const;

    MachineCosts _costs;
};

} // namespace cedar::perfect

#endif // CEDARSIM_PERFECT_MODEL_HH
