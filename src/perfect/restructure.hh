/**
 * @file
 * The restructuring transformations of Section 3.3.
 *
 * The "automatable" results come from transformations applied by hand
 * that the authors believed a parallelizer could implement: array
 * privatization, parallel reductions, advanced induction-variable
 * substitution, runtime data-dependence tests, balanced stripmining,
 * and parallelization in the presence of SAVE and RETURN statements —
 * many requiring advanced symbolic and interprocedural analysis
 * ([EHLP91], [EHJL91], [EHJP92]). This module makes the catalog a
 * first-class object: which transformations each Perfect code needs,
 * and a leave-one-out sensitivity model expressing how much of the
 * KAP-to-automatable gap each transformation carries per code.
 */

#ifndef CEDARSIM_PERFECT_RESTRUCTURE_HH
#define CEDARSIM_PERFECT_RESTRUCTURE_HH

#include <string>
#include <vector>

#include "perfect/model.hh"

namespace cedar::perfect {

/** The automatable transformations of Section 3.3. */
enum class Transformation : unsigned
{
    array_privatization,
    parallel_reductions,
    induction_substitution,
    runtime_dep_tests,
    balanced_stripmining,
    save_return_parallelization,
};

/** Number of catalogued transformations. */
constexpr unsigned num_transformations = 6;

/** Short name, e.g. "array privatization". */
const char *transformationName(Transformation t);

/** One-line description of what the transformation does. */
const char *transformationDescription(Transformation t);

/** True if the transformation needs advanced symbolic or
 *  interprocedural analysis (the paper's implementability caveat). */
bool requiresAdvancedAnalysis(Transformation t);

/** One code's dependence on one transformation. */
struct TransformationUse
{
    Transformation transformation;
    /** Fraction of the code's KAP-to-automatable improvement carried
     *  by this transformation (a code's uses sum to 1). */
    double weight;
};

/** The transformations a Perfect code needs to reach automatable. */
const std::vector<TransformationUse> &
transformationsFor(const std::string &code);

/**
 * Leave-one-out sensitivity: the projected speedup of @p code when
 * @p disabled is not applied, interpolating between the KAP and
 * automatable calibration points by the transformation's weight.
 * Codes that do not use the transformation are unaffected.
 */
double speedupWithout(const PerfectModel &model,
                      const WorkloadProfile &code,
                      Transformation disabled);

/**
 * Suite-wide criticality of a transformation: harmonic-mean speedup
 * of the automatable suite with it disabled everywhere.
 */
double suiteSpeedupWithout(const PerfectModel &model,
                           Transformation disabled);

} // namespace cedar::perfect

#endif // CEDARSIM_PERFECT_RESTRUCTURE_HH
