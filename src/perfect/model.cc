/**
 * @file
 * Perfect-suite execution model implementation.
 */

#include "model.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace cedar::perfect {

const char *
levelName(Level level)
{
    switch (level) {
      case Level::serial: return "serial";
      case Level::kap: return "KAP/Cedar";
      case Level::automatable: return "automatable";
      case Level::automatable_nosync: return "auto w/o sync";
      case Level::automatable_nopref: return "auto w/o pref";
      case Level::hand: return "hand";
    }
    return "?";
}

PerfectModel::PerfectModel(const MachineCosts &costs) : _costs(costs) {}

double
PerfectModel::overheadSeconds(const WorkloadProfile &p, double fraction,
                              unsigned processors, double fetch_us) const
{
    unsigned usable = std::min(processors, p.usable_processors);
    double compute = p.serial_seconds - p.io_seconds;
    double iterations =
        compute * fraction * 1e6 / p.loop_body_us;
    double fetch_s = iterations * fetch_us * 1e-6 /
                     static_cast<double>(usable);
    double startup_s = p.parallel_loops * _costs.xdoall_startup_us * 1e-6;
    double barrier_s = p.barriers * _costs.barrier_us * 1e-6;
    return fetch_s + startup_s + barrier_s;
}

double
PerfectModel::solveFraction(const WorkloadProfile &p,
                            double target_speedup, unsigned processors,
                            double vec_gain) const
{
    unsigned usable = std::min(processors, p.usable_processors);
    double S = static_cast<double>(usable) * vec_gain;
    double compute = p.serial_seconds - p.io_seconds;
    double t_target = p.serial_seconds / target_speedup;

    // T(f) = io + compute (1 - f) + compute f / S
    //        + loops*startup + barriers*bu + compute f fetch_ratio
    double fetch_ratio = _costs.iter_fetch_us /
                         (p.loop_body_us * static_cast<double>(usable));
    double fixed = p.parallel_loops * _costs.xdoall_startup_us * 1e-6 +
                   p.barriers * _costs.barrier_us * 1e-6;
    double denom = compute * (1.0 - 1.0 / S - fetch_ratio);
    if (denom <= 0.0)
        return -1.0; // scheduling cost exceeds parallel gain
    double f = (p.io_seconds + compute + fixed - t_target) / denom;
    return f;
}

CodeResult
PerfectModel::evaluate(const WorkloadProfile &profile, Level level) const
{
    double compute = profile.serial_seconds - profile.io_seconds;
    sim_assert(compute > 0.0, profile.name, ": serial time must exceed I/O");

    double seconds = profile.serial_seconds;

    auto timed = [&](double fraction, unsigned processors,
                     double vec_gain, double fetch_us,
                     double mem_mult) {
        unsigned usable = std::min(processors, profile.usable_processors);
        double S = static_cast<double>(usable) * vec_gain;
        return profile.io_seconds + compute * (1.0 - fraction) +
               compute * fraction * mem_mult / S +
               overheadSeconds(profile, fraction, processors, fetch_us);
    };

    switch (level) {
      case Level::serial:
        break;
      case Level::kap: {
        unsigned procs = profile.kap_single_cluster ? 8 : _costs.processors;
        double f = solveFraction(profile, profile.target_kap_speedup,
                                 procs, profile.vector_gain);
        if (f >= 0.0 && f <= 1.0) {
            seconds = timed(f, procs, profile.vector_gain,
                            _costs.iter_fetch_us, 1.0);
        } else {
            // Restructuring failed to help (or hurt): the calibration
            // target is the measurement itself.
            seconds = profile.serial_seconds / profile.target_kap_speedup;
        }
        break;
      }
      case Level::automatable:
      case Level::automatable_nosync:
      case Level::automatable_nopref: {
        double f = solveFraction(profile, profile.target_auto_speedup,
                                 _costs.processors, profile.vector_gain);
        if (f < 0.0 || f > 1.0) {
            warn(profile.name,
                 ": automatable target infeasible, clamping coverage");
            f = std::clamp(f, 0.0, 1.0);
        }
        double fetch = level == Level::automatable
                           ? _costs.iter_fetch_us
                           : _costs.iter_fetch_nosync_us;
        double mem_mult = 1.0;
        if (level == Level::automatable_nopref) {
            // Loop-local and scalar-dominated accesses are insensitive
            // to the PFU; global vector streams slow down by the
            // Table 1 factor.
            mem_mult = profile.local_fraction + profile.scalar_fraction +
                       profile.globalVectorFraction() *
                           _costs.nopref_slowdown;
        }
        seconds =
            timed(f, _costs.processors, profile.vector_gain, fetch,
                  mem_mult);
        break;
      }
      case Level::hand:
        if (profile.hand_seconds > 0.0) {
            seconds = profile.hand_seconds;
        } else {
            seconds = evaluate(profile, Level::automatable).seconds;
        }
        break;
    }

    CodeResult result;
    result.code = profile.name;
    result.level = level;
    result.seconds = seconds;
    result.mflops = profile.flopCount() / (seconds * 1e6);
    result.speedup = profile.serial_seconds / seconds;
    return result;
}

std::vector<CodeResult>
PerfectModel::evaluateSuite(Level level) const
{
    std::vector<CodeResult> results;
    for (const auto &p : perfectSuite())
        results.push_back(evaluate(p, level));
    return results;
}

std::vector<double>
PerfectModel::autoRates() const
{
    std::vector<double> rates;
    for (const auto &r : evaluateSuite(Level::automatable))
        rates.push_back(r.mflops);
    return rates;
}

std::vector<double>
PerfectModel::autoSpeedups() const
{
    std::vector<double> v;
    for (const auto &r : evaluateSuite(Level::automatable))
        v.push_back(r.speedup);
    return v;
}

std::vector<double>
PerfectModel::manualSpeedups() const
{
    std::vector<double> v;
    for (const auto &r : evaluateSuite(Level::hand))
        v.push_back(r.speedup);
    return v;
}

} // namespace cedar::perfect
