/**
 * @file
 * The thirteen Perfect Benchmarks profiles.
 *
 * Structural parameters follow the paper's per-code discussion:
 * DYFESM and OCEAN have fine-grained loops (they visibly slow down
 * without Cedar synchronization), DYFESM streams many vectors from
 * global memory on limited usable parallelism (big prefetch benefit),
 * TRACK and SPICE are dominated by scalar accesses, BDNA's serial time
 * contains heavy formatted I/O, FLO52's major routines run sequences
 * of multicluster barriers, QCD's random-number generator serializes
 * it until hand-parallelized, and TRFD/ARC2D/MG3D are the classic
 * vectorizable codes. Calibration targets reproduce the paper's
 * stated aggregates (Tables 3-6, Figure 3); see DESIGN.md.
 */

#include "profile.hh"

#include "sim/logging.hh"

namespace cedar::perfect {

namespace {

std::vector<WorkloadProfile>
buildSuite()
{
    std::vector<WorkloadProfile> suite;
    auto add = [&suite](WorkloadProfile p) { suite.push_back(std::move(p)); };

    WorkloadProfile p;

    p = {};
    p.name = "ADM";
    p.usable_processors = 16;
    p.serial_seconds = 126.0;
    p.io_seconds = 1.0;
    p.vector_gain = 2.2;
    p.loop_body_us = 1500.0;
    p.parallel_loops = 300.0;
    p.local_fraction = 0.50;
    p.scalar_fraction = 0.10;
    p.target_auto_speedup = 4.2;
    p.target_auto_mflops = 3.4;
    p.target_kap_speedup = 1.1;
    add(p);

    p = {};
    p.name = "ARC2D";
    p.serial_seconds = 742.5;
    p.io_seconds = 3.0;
    p.vector_gain = 3.5;
    p.loop_body_us = 2500.0;
    p.parallel_loops = 600.0;
    p.local_fraction = 0.45;
    p.scalar_fraction = 0.05;
    p.target_auto_speedup = 5.5;
    p.target_auto_mflops = 4.95;
    p.target_kap_speedup = 2.3;
    p.hand_seconds = 68.0; // Table 4: unnecessary-computation removal
                           // plus aggressive data distribution
    add(p);

    p = {};
    p.name = "BDNA";
    p.usable_processors = 16;
    p.serial_seconds = 480.0;
    p.io_seconds = 49.0; // formatted I/O; the hand fix makes it
                         // unformatted
    p.vector_gain = 2.8;
    p.loop_body_us = 3000.0;
    p.parallel_loops = 250.0;
    p.local_fraction = 0.50;
    p.scalar_fraction = 0.10;
    p.target_auto_speedup = 4.1;
    p.target_auto_mflops = 3.1;
    p.target_kap_speedup = 1.0;
    p.hand_seconds = 70.0; // Table 4
    add(p);

    p = {};
    p.name = "DYFESM";
    p.usable_processors = 6;
    p.serial_seconds = 175.5;
    p.io_seconds = 1.0;
    p.vector_gain = 2.4;
    p.loop_body_us = 40.0; // very small problem size: fine grain
    p.parallel_loops = 400.0;
    p.local_fraction = 0.35;
    p.scalar_fraction = 0.05; // mostly global vector fetches
    p.target_auto_speedup = 3.9;
    p.target_auto_mflops = 3.1;
    p.target_kap_speedup = 1.6;
    p.hand_seconds = 31.0; // [YaGa93] SDOALL/CDOALL restructuring
    add(p);

    p = {};
    p.name = "FLO52";
    p.serial_seconds = 552.0;
    p.io_seconds = 1.0;
    p.vector_gain = 3.2;
    p.loop_body_us = 800.0;
    p.parallel_loops = 500.0;
    p.barriers = 12000.0; // multicluster barrier sequences
    p.local_fraction = 0.45;
    p.scalar_fraction = 0.05;
    p.target_auto_speedup = 6.0;
    p.target_auto_mflops = 5.22;
    p.target_kap_speedup = 2.5;
    p.hand_seconds = 33.0; // [GJWY93] barrier restructuring
    add(p);

    p = {};
    p.name = "MDG";
    p.serial_seconds = 975.0;
    p.io_seconds = 1.0;
    p.vector_gain = 2.6;
    p.loop_body_us = 5000.0;
    p.parallel_loops = 200.0;
    p.local_fraction = 0.55;
    p.scalar_fraction = 0.10;
    p.target_auto_speedup = 6.5;
    p.target_auto_mflops = 4.55;
    p.target_kap_speedup = 1.2;
    add(p);

    p = {};
    p.name = "MG3D";
    p.serial_seconds = 1360.0; // file I/O already eliminated (Table 3
                               // footnote)
    p.io_seconds = 0.0;
    p.vector_gain = 3.8;
    p.loop_body_us = 8000.0;
    p.parallel_loops = 300.0;
    p.local_fraction = 0.50;
    p.scalar_fraction = 0.05;
    p.target_auto_speedup = 17.0; // the suite's one high-band code
    p.target_auto_mflops = 18.7;
    p.target_kap_speedup = 2.9;
    add(p);

    p = {};
    p.name = "OCEAN";
    p.usable_processors = 12;
    p.serial_seconds = 380.0;
    p.io_seconds = 1.0;
    p.vector_gain = 2.2;
    p.loop_body_us = 60.0; // fine grain: needs cheap self-scheduling
    p.parallel_loops = 800.0;
    p.local_fraction = 0.40;
    p.scalar_fraction = 0.10;
    p.target_auto_speedup = 4.0;
    p.target_auto_mflops = 3.0;
    p.target_kap_speedup = 1.1;
    add(p);

    p = {};
    p.name = "QCD";
    p.usable_processors = 8;
    p.serial_seconds = 430.0;
    p.io_seconds = 1.0;
    p.vector_gain = 1.3; // serial random-number generator
    p.loop_body_us = 500.0;
    p.parallel_loops = 400.0;
    p.local_fraction = 0.50;
    p.scalar_fraction = 0.25;
    p.target_auto_speedup = 1.8; // paper, Section 4.2
    p.target_auto_mflops = 1.62;
    p.target_kap_speedup = 0.9;
    p.kap_single_cluster = true;
    p.hand_seconds = 21.0; // Table 4: hand-coded parallel RNG
    add(p);

    p = {};
    p.name = "SPEC77";
    p.serial_seconds = 550.0;
    p.io_seconds = 2.0;
    p.vector_gain = 2.9;
    p.loop_body_us = 2000.0;
    p.parallel_loops = 400.0;
    p.local_fraction = 0.50;
    p.scalar_fraction = 0.10;
    p.target_auto_speedup = 5.0;
    p.target_auto_mflops = 4.5;
    p.target_kap_speedup = 1.3;
    add(p);

    p = {};
    p.name = "SPICE";
    p.usable_processors = 4;
    p.serial_seconds = 90.0;
    p.io_seconds = 1.0;
    p.vector_gain = 1.1;
    p.loop_body_us = 300.0;
    p.parallel_loops = 150.0;
    p.local_fraction = 0.40;
    p.scalar_fraction = 0.50; // sparse scalar chasing
    p.target_auto_speedup = 2.37;
    p.target_auto_mflops = 0.295;
    p.target_kap_speedup = 0.8;
    p.kap_single_cluster = true;
    p.hand_seconds = 26.0; // in-text: new approaches per phase
    add(p);

    p = {};
    p.name = "TRACK";
    p.usable_processors = 4;
    p.serial_seconds = 37.5;
    p.io_seconds = 0.5;
    p.vector_gain = 1.2;
    p.loop_body_us = 400.0;
    p.parallel_loops = 150.0;
    p.local_fraction = 0.30;
    p.scalar_fraction = 0.60; // domination of scalar accesses
    p.target_auto_speedup = 1.5;
    p.target_auto_mflops = 0.90;
    p.target_kap_speedup = 1.0;
    p.kap_single_cluster = true;
    p.hand_seconds = 11.0;
    add(p);

    p = {};
    p.name = "TRFD";
    p.serial_seconds = 70.0;
    p.io_seconds = 0.5;
    p.vector_gain = 3.0;
    p.loop_body_us = 900.0;
    p.parallel_loops = 250.0;
    p.local_fraction = 0.45;
    p.scalar_fraction = 0.05;
    p.target_auto_speedup = 3.4;
    p.target_auto_mflops = 3.0;
    p.target_kap_speedup = 2.1;
    p.hand_seconds = 7.5; // Table 4: kernels + distributed-memory fix
    add(p);

    return suite;
}

} // namespace

const std::vector<WorkloadProfile> &
perfectSuite()
{
    static const std::vector<WorkloadProfile> suite = buildSuite();
    return suite;
}

const WorkloadProfile &
perfectCode(const std::string &name)
{
    for (const auto &p : perfectSuite())
        if (p.name == name)
            return p;
    panic("unknown Perfect code '", name, "'");
}

} // namespace cedar::perfect
