/**
 * @file
 * Transformation catalog implementation.
 */

#include "restructure.hh"

#include <map>

#include "sim/logging.hh"
#include "sim/stats.hh"

namespace cedar::perfect {

const char *
transformationName(Transformation t)
{
    switch (t) {
      case Transformation::array_privatization:
        return "array privatization";
      case Transformation::parallel_reductions:
        return "parallel reductions";
      case Transformation::induction_substitution:
        return "induction substitution";
      case Transformation::runtime_dep_tests:
        return "runtime dep tests";
      case Transformation::balanced_stripmining:
        return "balanced stripmining";
      case Transformation::save_return_parallelization:
        return "SAVE/RETURN parallelization";
    }
    return "?";
}

const char *
transformationDescription(Transformation t)
{
    switch (t) {
      case Transformation::array_privatization:
        return "give each iteration a private copy of a scratch array "
               "so the loop carries no dependence; the privates land in "
               "cluster memory (loop-local placement)";
      case Transformation::parallel_reductions:
        return "recognize sum/min/max recurrences and compute partial "
               "results per CE with a combining step";
      case Transformation::induction_substitution:
        return "replace generalized induction variables with closed "
               "forms so iterations become independent";
      case Transformation::runtime_dep_tests:
        return "guard a parallel version with an inexpensive runtime "
               "test where static dependence analysis is inconclusive";
      case Transformation::balanced_stripmining:
        return "split iteration spaces into strips sized to the vector "
               "registers and balanced across CEs";
      case Transformation::save_return_parallelization:
        return "parallelize loops containing SAVE'd locals or early "
               "RETURNs by renaming and control restructuring";
    }
    return "?";
}

bool
requiresAdvancedAnalysis(Transformation t)
{
    switch (t) {
      case Transformation::array_privatization:
      case Transformation::induction_substitution:
      case Transformation::save_return_parallelization:
        return true; // symbolic + interprocedural analysis
      case Transformation::parallel_reductions:
      case Transformation::runtime_dep_tests:
      case Transformation::balanced_stripmining:
        return false;
    }
    return false;
}

namespace {

using T = Transformation;

const std::map<std::string, std::vector<TransformationUse>> &
useMap()
{
    // Weights: fraction of each code's KAP->automatable gap carried by
    // the transformation ([EHLP91] discusses which transformations
    // mattered for which codes; the split within a code is a modeling
    // estimate).
    static const std::map<std::string, std::vector<TransformationUse>>
        uses = {
            {"ADM",
             {{T::array_privatization, 0.6},
              {T::parallel_reductions, 0.4}}},
            {"ARC2D",
             {{T::array_privatization, 0.5},
              {T::balanced_stripmining, 0.5}}},
            {"BDNA",
             {{T::array_privatization, 0.5},
              {T::parallel_reductions, 0.3},
              {T::induction_substitution, 0.2}}},
            {"DYFESM",
             {{T::array_privatization, 0.4},
              {T::runtime_dep_tests, 0.3},
              {T::balanced_stripmining, 0.3}}},
            {"FLO52",
             {{T::array_privatization, 0.4},
              {T::balanced_stripmining, 0.3},
              {T::parallel_reductions, 0.3}}},
            {"MDG",
             {{T::array_privatization, 0.5},
              {T::parallel_reductions, 0.3},
              {T::save_return_parallelization, 0.2}}},
            {"MG3D",
             {{T::induction_substitution, 0.6},
              {T::runtime_dep_tests, 0.4}}},
            {"OCEAN",
             {{T::array_privatization, 0.4},
              {T::induction_substitution, 0.3},
              {T::balanced_stripmining, 0.3}}},
            {"QCD",
             {{T::array_privatization, 0.6},
              {T::save_return_parallelization, 0.4}}},
            {"SPEC77",
             {{T::array_privatization, 0.4},
              {T::parallel_reductions, 0.3},
              {T::balanced_stripmining, 0.3}}},
            {"SPICE",
             {{T::runtime_dep_tests, 0.6},
              {T::save_return_parallelization, 0.4}}},
            {"TRACK",
             {{T::array_privatization, 0.5},
              {T::induction_substitution, 0.5}}},
            {"TRFD",
             {{T::array_privatization, 0.4},
              {T::induction_substitution, 0.3},
              {T::balanced_stripmining, 0.3}}},
        };
    return uses;
}

} // namespace

const std::vector<TransformationUse> &
transformationsFor(const std::string &code)
{
    auto it = useMap().find(code);
    sim_assert(it != useMap().end(), "unknown Perfect code '", code, "'");
    return it->second;
}

double
speedupWithout(const PerfectModel &model, const WorkloadProfile &code,
               Transformation disabled)
{
    double automatable =
        model.evaluate(code, Level::automatable).speedup;
    double kap = model.evaluate(code, Level::kap).speedup;
    for (const auto &use : transformationsFor(code.name)) {
        if (use.transformation == disabled) {
            // Lose that share of the improvement.
            double without =
                automatable - use.weight * (automatable - kap);
            return std::max(without, std::min(kap, automatable));
        }
    }
    return automatable;
}

double
suiteSpeedupWithout(const PerfectModel &model, Transformation disabled)
{
    std::vector<double> speedups;
    for (const auto &code : perfectSuite())
        speedups.push_back(speedupWithout(model, code, disabled));
    return harmonicMean(speedups);
}

} // namespace cedar::perfect
