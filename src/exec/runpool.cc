/**
 * @file
 * Work-stealing run pool implementation.
 */

#include "runpool.hh"

#include <algorithm>
#include <cstdlib>

#include "sim/logging.hh"

namespace cedar::exec {

unsigned
RunPool::defaultJobs()
{
    if (const char *env = std::getenv("CEDAR_JOBS"); env && *env) {
        long v = std::strtol(env, nullptr, 10);
        if (v > 0)
            return unsigned(v);
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 2;
}

RunPool::RunPool(unsigned workers, std::size_t queue_bound,
                 std::uint64_t master_seed)
    : _master_seed(master_seed)
{
    if (workers == 0)
        workers = defaultJobs();
    _queue_bound = queue_bound ? queue_bound
                               : std::max<std::size_t>(4 * workers, 16);
    _queues.resize(workers);
    _threads.reserve(workers);
    for (unsigned id = 0; id < workers; ++id)
        _threads.emplace_back([this, id] { workerLoop(id); });
}

RunPool::~RunPool()
{
    cancel();
    {
        std::lock_guard<std::mutex> lock(_mu);
        _shutdown = true;
    }
    _work_cv.notify_all();
    for (std::thread &t : _threads)
        t.join();
}

std::size_t
RunPool::submit(Task task)
{
    sim_assert(task, "RunPool::submit needs a callable run");
    std::unique_lock<std::mutex> lock(_mu);
    sim_assert(!_shutdown, "submit on a shut-down RunPool");
    _space_cv.wait(lock, [this] {
        return _backlog < _queue_bound || cancelled();
    });
    std::size_t index = _submitted++;
    // Deterministic home assignment; where the run *executes* is up to
    // the thieves, which is fine because execution order is invisible
    // in the merged output.
    unsigned home = _next_home;
    _next_home = (_next_home + 1) % unsigned(_queues.size());
    _queues[home].push_back(Pending{std::move(task), index});
    ++_backlog;
    lock.unlock();
    _work_cv.notify_one();
    return index;
}

bool
RunPool::takeLocked(unsigned id, Pending &out, bool &stolen)
{
    auto &own = _queues[id];
    if (!own.empty()) {
        out = std::move(own.back());
        own.pop_back();
        stolen = false;
        return true;
    }
    std::size_t victim = _queues.size();
    std::size_t best = 0;
    for (std::size_t v = 0; v < _queues.size(); ++v) {
        if (v != id && _queues[v].size() > best) {
            best = _queues[v].size();
            victim = v;
        }
    }
    if (victim == _queues.size())
        return false;
    out = std::move(_queues[victim].front());
    _queues[victim].pop_front();
    stolen = true;
    return true;
}

void
RunPool::workerLoop(unsigned id)
{
    std::unique_lock<std::mutex> lock(_mu);
    while (true) {
        Pending run;
        bool stolen = false;
        if (!takeLocked(id, run, stolen)) {
            if (_shutdown)
                return;
            _work_cv.wait(lock);
            continue;
        }
        --_backlog;
        if (stolen)
            ++_steals;
        bool skip = cancelled();
        if (skip)
            ++_skipped;
        lock.unlock();
        _space_cv.notify_one();

        if (!skip) {
            RunContext ctx;
            ctx.index = run.index;
            ctx.seed = deriveSeed(_master_seed, run.index);
            ctx.cancel_flag = &_cancelled;
            try {
                run.fn(ctx);
            } catch (...) {
                recordError(run.index, std::current_exception());
                cancel();
            }
        }

        lock.lock();
        ++_finished;
        if (_finished == _submitted)
            _done_cv.notify_all();
    }
}

void
RunPool::recordError(std::size_t index, std::exception_ptr error)
{
    std::lock_guard<std::mutex> lock(_mu);
    if (index < _first_error_index) {
        _first_error_index = index;
        _first_error = std::move(error);
    }
}

void
RunPool::wait()
{
    std::unique_lock<std::mutex> lock(_mu);
    _done_cv.wait(lock, [this] { return _finished == _submitted; });
}

void
RunPool::cancel()
{
    _cancelled.store(true, std::memory_order_relaxed);
    _space_cv.notify_all();
}

void
RunPool::rethrowFirstError()
{
    std::lock_guard<std::mutex> lock(_mu);
    if (_first_error)
        std::rethrow_exception(_first_error);
}

std::exception_ptr
RunPool::firstError() const
{
    std::lock_guard<std::mutex> lock(_mu);
    return _first_error;
}

std::size_t
RunPool::firstErrorIndex() const
{
    std::lock_guard<std::mutex> lock(_mu);
    return _first_error_index;
}

std::uint64_t
RunPool::stealCount() const
{
    std::lock_guard<std::mutex> lock(_mu);
    return _steals;
}

std::uint64_t
RunPool::skippedCount() const
{
    std::lock_guard<std::mutex> lock(_mu);
    return _skipped;
}

} // namespace cedar::exec
