/**
 * @file
 * Per-run execution context for the sweep executor.
 *
 * A RunContext is the complete per-run bundle a task receives from a
 * RunPool (or from the inline serial path): its submission index, a
 * seed derived deterministically from the pool's master seed and that
 * index, and a cancellation probe. Everything else a run needs — the
 * Machine, its StatRegistry, fault injectors, event pools — must be
 * constructed *inside* the task from these values, never reached
 * through process globals. That ownership rule is what makes a run
 * executed on worker 7 of 8 bit-identical to the same run executed
 * serially: the only inputs are (index, seed, the task's own captured
 * parameters), and none of them depend on scheduling order.
 *
 * DESIGN.md §10 "Execution model" records what may and may not be
 * global under this contract.
 */

#ifndef CEDARSIM_EXEC_RUNCONTEXT_HH
#define CEDARSIM_EXEC_RUNCONTEXT_HH

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "sim/random.hh"

namespace cedar::exec {

/** Master seed used when a caller does not supply one. */
constexpr std::uint64_t default_master_seed = 0xCEDAE8ECULL;

/**
 * Derive the seed of run @p index from @p master. Pure function of its
 * arguments: run 5 gets the same seed whether it executes first, last,
 * serially, or on any worker, and neighbouring indices get
 * statistically independent streams. The mixing itself lives in
 * sim/random.hh with every other seed primitive.
 */
constexpr std::uint64_t
deriveSeed(std::uint64_t master, std::size_t index)
{
    return cedar::deriveSeed(master, std::uint64_t(index));
}

/** What one submitted run is given to execute with. */
struct RunContext
{
    /** Submission order of this run (also its result slot). */
    std::size_t index = 0;

    /** Per-run seed: deriveSeed(master_seed, index). */
    std::uint64_t seed = 0;

    /**
     * Pool-wide cancellation flag (nullptr on the inline serial
     * path). Long-running tasks may poll cancelled() and return early
     * after a sibling run has raised a hard SimError; the partial
     * result is discarded, so an early return only saves host time.
     */
    const std::atomic<bool> *cancel_flag = nullptr;

    bool
    cancelled() const
    {
        return cancel_flag &&
               cancel_flag->load(std::memory_order_relaxed);
    }
};

} // namespace cedar::exec

#endif // CEDARSIM_EXEC_RUNCONTEXT_HH
