/**
 * @file
 * A work-stealing thread pool for independent simulation runs.
 *
 * Every parameter point of a sweep — one Machine, one StatRegistry,
 * one seed — is an independent run, so the harness rather than the
 * model owns the concurrency: a RunPool executes submitted runs on N
 * workers while the per-run RunContext contract (see runcontext.hh)
 * keeps each run bit-identical to its serial execution.
 *
 * Shape:
 *  - each worker owns a deque; submissions are dealt round-robin to
 *    the workers' home deques (a deterministic assignment), and a
 *    bounded total backlog makes submit() block rather than buffer an
 *    unbounded sweep;
 *  - an idle worker first drains its own deque LIFO, then steals the
 *    oldest run from the most loaded sibling (FIFO), so long tails
 *    migrate to whoever is free;
 *  - the first run that throws cancels the pool: not-yet-started runs
 *    are skipped, wait() completes, and rethrowFirstError() raises
 *    the recorded error (lowest submission index among those that
 *    actually failed) in the submitting thread.
 *
 * The pool makes no fairness or ordering promise between runs — that
 * is the point. Deterministic *output* ordering is the caller's job:
 * collect results by submission index and emit them in index order
 * (parallel.hh's parallelMap does exactly this).
 */

#ifndef CEDARSIM_EXEC_RUNPOOL_HH
#define CEDARSIM_EXEC_RUNPOOL_HH

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "exec/runcontext.hh"

namespace cedar::exec {

/** Work-stealing executor of independent runs. */
class RunPool
{
  public:
    using Task = std::function<void(RunContext &)>;

    /**
     * @param workers     worker threads (0 picks defaultJobs())
     * @param queue_bound max runs queued but not yet started before
     *                    submit() blocks (0 picks a small multiple of
     *                    the worker count)
     * @param master_seed seed every run's RunContext::seed derives from
     */
    explicit RunPool(unsigned workers, std::size_t queue_bound = 0,
                     std::uint64_t master_seed = default_master_seed);

    /** Cancels outstanding runs and joins the workers. */
    ~RunPool();

    RunPool(const RunPool &) = delete;
    RunPool &operator=(const RunPool &) = delete;

    /**
     * Submit one run. Blocks while the backlog is at the bound.
     * @return the run's submission index (its RunContext::index)
     */
    std::size_t submit(Task task);

    /** Block until every submitted run has finished or been skipped. */
    void wait();

    /** Skip every run that has not started yet. */
    void cancel();

    /** True once cancel() ran (explicitly or after a run threw). */
    bool
    cancelled() const
    {
        return _cancelled.load(std::memory_order_relaxed);
    }

    /**
     * After wait(): rethrow the recorded error, if any. Of the runs
     * that failed, the one with the lowest submission index wins, so
     * a deterministic serial replay reports the same run first.
     */
    void rethrowFirstError();

    /** Error of the winning failed run (nullptr when all clean). */
    std::exception_ptr firstError() const;

    /** Submission index of the winning failed run. */
    std::size_t firstErrorIndex() const;

    unsigned workers() const { return unsigned(_threads.size()); }

    /** Runs executed by a worker other than their home worker. */
    std::uint64_t stealCount() const;

    /** Runs that were skipped because the pool was cancelled. */
    std::uint64_t skippedCount() const;

    /**
     * Worker count when the caller does not choose: $CEDAR_JOBS if
     * set and positive, else std::thread::hardware_concurrency(),
     * else 2.
     */
    static unsigned defaultJobs();

  private:
    struct Pending
    {
        Task fn;
        std::size_t index;
    };

    void workerLoop(unsigned id);

    /** Pop a run for worker @p id: own deque LIFO, else steal FIFO
     *  from the most loaded sibling. Caller holds _mu. */
    bool takeLocked(unsigned id, Pending &out, bool &stolen);

    void recordError(std::size_t index, std::exception_ptr error);

    std::uint64_t _master_seed;
    std::size_t _queue_bound;

    mutable std::mutex _mu;
    std::condition_variable _work_cv;  ///< workers wait for runs
    std::condition_variable _space_cv; ///< submit waits for backlog room
    std::condition_variable _done_cv;  ///< wait() waits for completion

    /** One home deque per worker; all guarded by _mu (run granularity
     *  is whole simulations, so the lock is never contended enough to
     *  matter, and a single lock keeps the pool easy to reason about
     *  and trivially clean under TSan). */
    std::vector<std::deque<Pending>> _queues;
    std::vector<std::thread> _threads;

    std::size_t _submitted = 0;
    std::size_t _finished = 0; ///< completed, failed, or skipped
    std::size_t _backlog = 0;  ///< queued, not yet started
    unsigned _next_home = 0;
    bool _shutdown = false;

    std::atomic<bool> _cancelled{false};
    std::exception_ptr _first_error;
    std::size_t _first_error_index = ~std::size_t(0);
    std::uint64_t _steals = 0;
    std::uint64_t _skipped = 0;
};

} // namespace cedar::exec

#endif // CEDARSIM_EXEC_RUNPOOL_HH
