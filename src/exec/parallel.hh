/**
 * @file
 * Deterministic fan-out/merge on top of RunPool.
 *
 * parallelMap() is the one primitive sweeps are written against: hand
 * it the parameter points as tasks, get the results back *in
 * submission order* regardless of completion order. With jobs <= 1 it
 * never touches a thread — the tasks run inline, in order, in the
 * calling thread — so `--jobs 1` is not "a pool with one worker" but
 * literally the serial path, and the byte-identity of `--jobs 1`
 * versus `--jobs 8` output reduces to the RunContext ownership rules
 * (runcontext.hh) plus this module's index-ordered merge.
 */

#ifndef CEDARSIM_EXEC_PARALLEL_HH
#define CEDARSIM_EXEC_PARALLEL_HH

#include <algorithm>
#include <functional>
#include <utility>
#include <vector>

#include "exec/runpool.hh"

namespace cedar::exec {

/**
 * Run every task (each an independent parameter point) and return
 * their results indexed by submission order.
 *
 * @tparam T result type; default-constructible, one slot per task
 *           (avoid std::vector<bool>-style proxy containers)
 * @param jobs        worker threads; <= 1 executes inline serially
 * @param tasks       independent runs; each must obey the RunContext
 *                    ownership rules (no shared mutable state)
 * @param master_seed seed the per-run seeds derive from
 * @throws whatever the failed run with the lowest submission index
 *         threw, after cancelling the rest of the sweep
 */
template <typename T>
std::vector<T>
parallelMap(unsigned jobs,
            std::vector<std::function<T(RunContext &)>> tasks,
            std::uint64_t master_seed = default_master_seed)
{
    std::vector<T> results(tasks.size());
    if (jobs <= 1 || tasks.size() <= 1) {
        for (std::size_t i = 0; i < tasks.size(); ++i) {
            RunContext ctx;
            ctx.index = i;
            ctx.seed = deriveSeed(master_seed, i);
            results[i] = tasks[i](ctx);
        }
        return results;
    }

    RunPool pool(unsigned(std::min<std::size_t>(jobs, tasks.size())), 0,
                 master_seed);
    for (std::size_t i = 0; i < tasks.size(); ++i) {
        pool.submit([&results, &tasks, i](RunContext &ctx) {
            // Each run writes only its own slot; the merge is the
            // index ordering of `results` itself.
            results[i] = tasks[i](ctx);
        });
    }
    pool.wait();
    pool.rethrowFirstError();
    return results;
}

/** Void-returning convenience: run independent actions, fail on the
 *  lowest-index error, no result merge. */
inline void
parallelForEach(unsigned jobs,
                std::vector<std::function<void(RunContext &)>> tasks,
                std::uint64_t master_seed = default_master_seed)
{
    parallelMap<char>(
        jobs,
        [&] {
            std::vector<std::function<char(RunContext &)>> wrapped;
            wrapped.reserve(tasks.size());
            for (auto &t : tasks) {
                wrapped.push_back([&t](RunContext &ctx) -> char {
                    t(ctx);
                    return 0;
                });
            }
            return wrapped;
        }(),
        master_seed);
}

} // namespace cedar::exec

#endif // CEDARSIM_EXEC_PARALLEL_HH
