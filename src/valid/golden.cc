/**
 * @file
 * Golden file load/save/check implementation.
 */

#include "valid/golden.hh"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "valid/json.hh"

#ifndef CEDAR_GOLDEN_DIR_DEFAULT
#define CEDAR_GOLDEN_DIR_DEFAULT ""
#endif

namespace cedar::valid {

namespace {

/** Absolute slack applied to both bands so exact-zero cells compare
 *  robustly under floating point. */
constexpr double abs_slack = 1e-12;

bool
within(double measured, double target, double rel_tol)
{
    return std::abs(measured - target) <=
           rel_tol * std::abs(target) + abs_slack;
}

double
relDeviation(double measured, double target)
{
    double denom = std::abs(target);
    if (denom < abs_slack)
        return std::abs(measured - target) < abs_slack ? 0.0 : HUGE_VAL;
    return std::abs(measured - target) / denom;
}

} // namespace

const GoldenCell *
GoldenFile::find(const std::string &key) const
{
    for (const auto &c : cells)
        if (c.key == key)
            return &c;
    return nullptr;
}

std::string
goldenDir()
{
    if (const char *env = std::getenv("CEDAR_GOLDEN_DIR"); env && *env)
        return env;
    return CEDAR_GOLDEN_DIR_DEFAULT;
}

std::string
goldenPath(const std::string &dir, const std::string &scenario)
{
    return dir + "/" + scenario + ".json";
}

GoldenFile
loadGolden(const std::string &path)
{
    std::ifstream in(path);
    if (!in) {
        throw std::runtime_error("golden: cannot open " + path +
                                 " (set CEDAR_GOLDEN_DIR or run "
                                 "cedar_validate --update-golden)");
    }
    std::ostringstream buf;
    buf << in.rdbuf();

    Json doc;
    try {
        doc = Json::parse(buf.str());
    } catch (const std::exception &e) {
        throw std::runtime_error("golden: " + path + ": " + e.what());
    }

    GoldenFile golden;
    if (const Json *s = doc.get("scenario"))
        golden.scenario = s->asString();
    if (const Json *s = doc.get("source"))
        golden.source = s->asString();
    const Json *cells = doc.get("cells");
    if (!cells || !cells->isArray())
        throw std::runtime_error("golden: " + path +
                                 ": missing \"cells\" array");
    for (std::size_t i = 0; i < cells->size(); ++i) {
        const Json &c = cells->at(i);
        GoldenCell cell;
        const Json *key = c.get("key");
        const Json *value = c.get("value");
        if (!key || !value) {
            throw std::runtime_error(
                "golden: " + path + ": cell " + std::to_string(i) +
                " needs \"key\" and \"value\"");
        }
        cell.key = key->asString();
        cell.value = value->asNumber();
        if (const Json *p = c.get("paper"); p && p->isNumber())
            cell.paper = p->asNumber();
        if (const Json *t = c.get("paper_tol"))
            cell.paper_tol = t->asNumber();
        if (const Json *d = c.get("drift"))
            cell.drift = d->asNumber();
        if (const Json *n = c.get("note"))
            cell.note = n->asString();
        golden.cells.push_back(std::move(cell));
    }
    return golden;
}

void
saveGolden(const std::string &path, const GoldenFile &golden)
{
    Json doc = Json::object();
    doc.set("scenario", Json::of(golden.scenario));
    doc.set("source", Json::of(golden.source));
    Json cells = Json::array();
    for (const auto &c : golden.cells) {
        Json cell = Json::object();
        cell.set("key", Json::of(c.key));
        cell.set("value", Json::of(c.value));
        if (c.hasPaper()) {
            cell.set("paper", Json::of(c.paper));
            cell.set("paper_tol", Json::of(c.paper_tol));
        }
        cell.set("drift", Json::of(c.drift));
        if (!c.note.empty())
            cell.set("note", Json::of(c.note));
        cells.push(std::move(cell));
    }
    doc.set("cells", std::move(cells));

    std::ofstream out(path);
    if (!out)
        throw std::runtime_error("golden: cannot write " + path);
    out << doc.dump(2);
    if (!out)
        throw std::runtime_error("golden: write failed for " + path);
}

GoldenFile
goldenFromRun(const Scenario &scenario, const Metrics &metrics)
{
    GoldenFile golden;
    golden.scenario = scenario.name;
    golden.source = scenario.title;
    for (const auto &m : metrics.values) {
        if (!m.checked)
            continue;
        GoldenCell cell;
        cell.key = m.key;
        cell.value = m.value;
        cell.paper = m.spec.paper;
        cell.paper_tol = m.spec.paper_tol;
        cell.drift = m.spec.drift;
        cell.note = m.spec.note;
        golden.cells.push_back(std::move(cell));
    }
    return golden;
}

CheckResult
checkAgainstGolden(const GoldenFile &golden, const Metrics &metrics)
{
    CheckResult result;
    result.scenario = golden.scenario;

    for (const auto &cell : golden.cells) {
        CellResult r;
        r.key = cell.key;
        r.expected = cell.value;
        r.paper = cell.paper;
        r.note = cell.note;
        const MetricValue *m = metrics.find(cell.key);
        if (!m) {
            r.present = false;
            r.drift_ok = r.paper_ok = false;
        } else {
            r.measured = m->value;
            r.drift_seen = relDeviation(m->value, cell.value);
            r.drift_ok = within(m->value, cell.value, cell.drift);
            r.paper_ok = !cell.hasPaper() ||
                         within(m->value, cell.paper, cell.paper_tol);
        }
        if (!r.ok())
            ++result.failures;
        result.cells.push_back(std::move(r));
    }

    // A checked cell the golden file has never seen means the scenario
    // grew a new cell without --update-golden: flag it, or the new
    // cell would go unvalidated forever.
    for (const auto &m : metrics.values) {
        if (m.checked && !golden.find(m.key))
            result.unknown_cells.push_back(m.key);
    }
    return result;
}

std::string
describeFailures(const CheckResult &result)
{
    std::ostringstream os;
    for (const auto &c : result.cells) {
        if (c.ok())
            continue;
        os << "  " << result.scenario << "." << c.key << ": ";
        if (!c.present) {
            os << "missing from run (golden value " << c.expected
               << ")";
        } else {
            char buf[160];
            std::snprintf(buf, sizeof(buf),
                          "measured %.6g vs golden %.6g (drift %.2g%%)",
                          c.measured, c.expected, 100.0 * c.drift_seen);
            os << buf;
            if (!c.paper_ok && c.paper == c.paper) {
                std::snprintf(buf, sizeof(buf),
                              ", outside paper band %.6g", c.paper);
                os << buf;
            }
        }
        if (!c.note.empty())
            os << "  [" << c.note << "]";
        os << "\n";
    }
    for (const auto &key : result.unknown_cells) {
        os << "  " << result.scenario << "." << key
           << ": new cell not in golden file (run cedar_validate "
              "--update-golden)\n";
    }
    return os.str();
}

} // namespace cedar::valid
