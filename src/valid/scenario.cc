/**
 * @file
 * Scenario registry implementation.
 */

#include "valid/scenario.hh"

#include <cstdio>
#include <mutex>
#include <stdexcept>

#include <unistd.h>

#include "machine/cedar.hh"

namespace cedar::valid {

namespace detail {
// Defined in scenarios/all_scenarios.cc; calls every per-scenario
// registrar exactly once. An explicit call chain (rather than static
// initializers) so the scenarios survive static-library linking.
void registerAllScenarios();
} // namespace detail

namespace {

std::vector<Scenario> &
registry()
{
    static std::vector<Scenario> scenarios;
    return scenarios;
}

void
ensureRegistered()
{
    static std::once_flag once;
    std::call_once(once, [] { detail::registerAllScenarios(); });
}

} // namespace

const MetricValue *
Metrics::find(const std::string &key) const
{
    for (const auto &m : values)
        if (m.key == key)
            return &m;
    return nullptr;
}

double
Metrics::at(const std::string &key) const
{
    const MetricValue *m = find(key);
    if (!m)
        throw std::runtime_error("metrics: no value for key '" + key +
                                 "'");
    return m->value;
}

void
registerScenario(Scenario s)
{
    for (const auto &existing : registry()) {
        if (existing.name == s.name) {
            throw std::logic_error("scenario '" + s.name +
                                   "' registered twice");
        }
    }
    registry().push_back(std::move(s));
}

const std::vector<Scenario> &
allScenarios()
{
    ensureRegistered();
    return registry();
}

const Scenario *
findScenario(const std::string &name)
{
    for (const auto &s : allScenarios())
        if (s.name == name)
            return &s;
    return nullptr;
}

void
ScenarioContext::observe(machine::CedarMachine &m,
                         const std::string &point) const
{
    if (!telemetryEnabled())
        return;
    std::string escaped;
    for (char c : point) {
        if (c == '"' || c == '\\')
            escaped.push_back('\\');
        escaped.push_back(c);
    }
    _telemetry.write("{\"v\":1,\"kind\":\"point\",\"label\":\"" +
                     escaped + "\"}");
    TelemetryParams params;
    params.interval = _opts.telemetry_interval;
    m.enableTelemetry(params, _telemetry);
}

Metrics
runScenario(const Scenario &s, const ScenarioOptions &opts)
{
    ScenarioContext ctx(opts);
    s.run(ctx);
    Metrics m = ctx.metrics();
    m.telemetry = ctx.telemetryText();
    return m;
}

StdoutSilencer::StdoutSilencer()
{
    std::fflush(stdout);
    _saved_fd = ::dup(STDOUT_FILENO);
    if (_saved_fd >= 0 && !std::freopen("/dev/null", "w", stdout)) {
        ::close(_saved_fd);
        _saved_fd = -1;
    }
}

StdoutSilencer::~StdoutSilencer()
{
    if (_saved_fd >= 0) {
        std::fflush(stdout);
        ::dup2(_saved_fd, STDOUT_FILENO);
        ::close(_saved_fd);
    }
}

} // namespace cedar::valid
