/**
 * @file
 * Validation driver implementation: parallel scenario execution with
 * submission-order deterministic reporting.
 */

#include "driver.hh"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <optional>
#include <utility>

#include "exec/parallel.hh"

namespace cedar::valid {

namespace {

/** printf-append with exact formatting (report text is byte-checked). */
template <typename... Args>
void
appendf(std::string &out, const char *fmt, Args... args)
{
    int n = std::snprintf(nullptr, 0, fmt, args...);
    if (n <= 0)
        return;
    std::vector<char> buf(std::size_t(n) + 1);
    std::snprintf(buf.data(), buf.size(), fmt, args...);
    out.append(buf.data(), std::size_t(n));
}

/** <dir>/<scenario>.metrics.json — the sweep's resume cache entry. */
std::string
metricsPath(const std::string &dir, const std::string &scenario)
{
    return dir + "/" + scenario + ".metrics.json";
}

Json
metricsToJson(const Metrics &m)
{
    Json values = Json::array();
    for (const auto &v : m.values) {
        Json vj = Json::object();
        vj.set("key", Json::of(v.key));
        vj.set("value", Json::of(v.value));
        vj.set("checked", Json::of(v.checked));
        if (v.checked) {
            if (v.spec.paper == v.spec.paper)
                vj.set("paper", Json::of(v.spec.paper));
            vj.set("paper_tol", Json::of(v.spec.paper_tol));
            vj.set("drift", Json::of(v.spec.drift));
            vj.set("note", Json::of(v.spec.note));
        }
        values.push(std::move(vj));
    }
    Json notes = Json::array();
    for (const auto &[k, v] : m.notes) {
        Json nj = Json::object();
        nj.set("key", Json::of(k));
        nj.set("value", Json::of(v));
        notes.push(std::move(nj));
    }
    Json top = Json::object();
    top.set("v", Json::of(1.0));
    top.set("values", std::move(values));
    top.set("notes", std::move(notes));
    top.set("telemetry", Json::of(m.telemetry));
    return top;
}

/** @throws std::runtime_error on schema mismatch */
Metrics
metricsFromJson(const Json &j)
{
    Metrics m;
    const Json *values = j.isObject() ? j.get("values") : nullptr;
    if (!values || !values->isArray())
        throw std::runtime_error("metrics cache: no 'values' array");
    for (std::size_t i = 0; i < values->size(); ++i) {
        const Json &vj = values->at(i);
        MetricValue v;
        v.key = vj.get("key")->asString();
        v.value = vj.get("value")->asNumber();
        v.checked = vj.get("checked")->asBool();
        if (v.checked) {
            if (const Json *p = vj.get("paper"))
                v.spec.paper = p->asNumber();
            v.spec.paper_tol = vj.get("paper_tol")->asNumber();
            v.spec.drift = vj.get("drift")->asNumber();
            v.spec.note = vj.get("note")->asString();
        }
        m.values.push_back(std::move(v));
    }
    if (const Json *notes = j.get("notes"); notes && notes->isArray()) {
        for (std::size_t i = 0; i < notes->size(); ++i) {
            const Json &nj = notes->at(i);
            m.notes.emplace_back(nj.get("key")->asString(),
                                 nj.get("value")->asString());
        }
    }
    if (const Json *t = j.get("telemetry"); t && t->isString())
        m.telemetry = t->asString();
    return m;
}

/** Load one cached Metrics; empty optional when absent/unreadable. */
std::optional<Metrics>
loadCachedMetrics(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return std::nullopt;
    std::string text;
    char buf[4096];
    std::size_t got;
    while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0)
        text.append(buf, got);
    std::fclose(f);
    try {
        return metricsFromJson(Json::parse(text));
    } catch (const std::exception &) {
        // A torn/stale cache entry just means the scenario re-runs.
        return std::nullopt;
    }
}

} // namespace

std::string
ValidationReport::logText() const
{
    std::string text;
    for (const auto &out : outcomes) {
        if (out.threw) {
            appendf(text, "FAIL %s: scenario threw: %s\n",
                    out.name.c_str(), out.error.c_str());
            continue;
        }
        if (update) {
            appendf(text, "wrote %s\n", out.golden_path.c_str());
            continue;
        }
        if (out.sampled) {
            appendf(text, "est  %-22s %3zu metric(s), not golden-checked\n",
                    out.name.c_str(), out.metrics.values.size());
            continue;
        }
        if (out.golden_error) {
            appendf(text, "FAIL %s: %s\n", out.name.c_str(),
                    out.error.c_str());
            continue;
        }
        unsigned checked = unsigned(out.result.cells.size());
        if (!out.result.ok()) {
            appendf(text, "FAIL %s: %u of %u cells out of band\n%s",
                    out.name.c_str(),
                    out.result.failures +
                        unsigned(out.result.unknown_cells.size()),
                    checked, describeFailures(out.result).c_str());
        } else {
            appendf(text, "ok   %-22s %3u cells%s\n", out.name.c_str(),
                    checked, out.resumed ? " (resumed)" : "");
        }
    }
    if (ran == 0) {
        text += "no scenario matched the filter\n";
    } else if (!update) {
        appendf(text, "%u scenario(s), %u failed\n", ran, failed);
    }
    return text;
}

Json
ValidationReport::jsonReport() const
{
    Json results = Json::array();
    for (const auto &out : outcomes) {
        if (update || out.threw || out.golden_error)
            continue;
        if (out.sampled) {
            // Estimates carry raw metrics, no golden verdicts.
            Json sj = Json::object();
            sj.set("scenario", Json::of(out.name));
            sj.set("sampled", Json::of(true));
            Json vals = Json::object();
            for (const auto &v : out.metrics.values)
                vals.set(v.key, Json::of(v.value));
            sj.set("metrics", std::move(vals));
            results.push(std::move(sj));
            continue;
        }
        Json sj = Json::object();
        sj.set("scenario", Json::of(out.name));
        sj.set("ok", Json::of(out.result.ok()));
        sj.set("failures", Json::of(double(out.result.failures)));
        Json cells = Json::array();
        for (const auto &c : out.result.cells) {
            Json cj = Json::object();
            cj.set("key", Json::of(c.key));
            cj.set("measured", Json::of(c.measured));
            cj.set("golden", Json::of(c.expected));
            if (c.paper == c.paper)
                cj.set("paper", Json::of(c.paper));
            cj.set("drift", Json::of(c.drift_seen));
            cj.set("ok", Json::of(c.ok()));
            cells.push(std::move(cj));
        }
        sj.set("cells", std::move(cells));
        results.push(std::move(sj));
    }
    Json top = Json::object();
    top.set("scenarios_run", Json::of(double(ran)));
    top.set("scenarios_failed", Json::of(double(failed)));
    // A pass that ran nothing proved nothing: "ok" requires ran > 0.
    top.set("ok", Json::of(failed == 0 && ran > 0));
    top.set("results", std::move(results));
    return top;
}

int
ValidationReport::exitCode() const
{
    if (ran == 0)
        return 2;
    if (update)
        return 0;
    return failed == 0 ? 0 : 1;
}

ValidationReport
runValidation(const ValidationOptions &opts)
{
    ValidationReport report;
    report.update = opts.update;

    const std::string golden_dir =
        opts.golden_dir.empty() ? goldenDir() : opts.golden_dir;

    auto selected = [&opts](const Scenario &s) {
        if (opts.fast_only && !s.fast)
            return false;
        if (opts.filters.empty())
            return true;
        for (const auto &f : opts.filters)
            if (s.name.find(f) != std::string::npos)
                return true;
        return false;
    };

    std::vector<const Scenario *> chosen;
    for (const auto &s : allScenarios())
        if (selected(s))
            chosen.push_back(&s);

    report.ran = unsigned(chosen.size());
    if (chosen.empty())
        return report;

    // Table printing from concurrent workers would interleave; verbose
    // mode keeps it, so it pins the literal serial path.
    const unsigned jobs = opts.verbose ? 1 : std::max(1u, opts.jobs);
    const unsigned point_jobs = std::max(1u, opts.point_jobs);

    std::vector<std::function<ScenarioOutcome(exec::RunContext &)>> tasks;
    tasks.reserve(chosen.size());
    for (const Scenario *s : chosen) {
        tasks.push_back([s, &opts, &golden_dir,
                         point_jobs](exec::RunContext &) {
            // Everything the run touches — machines, simulations, stat
            // registries — is constructed inside this task; the only
            // things crossing the boundary are the immutable options
            // and the returned outcome (DESIGN.md §10).
            ScenarioOutcome out;
            out.name = s->name;
            out.sampled = opts.sample;
            // Resume: a cached metrics file stands in for the run. The
            // decision depends only on the filesystem at submission
            // time, so report bytes stay jobs-independent.
            if (opts.resume && !opts.checkpoint_dir.empty()) {
                if (auto cached = loadCachedMetrics(
                        metricsPath(opts.checkpoint_dir, s->name))) {
                    out.metrics = std::move(*cached);
                    out.resumed = true;
                }
            }
            if (!out.resumed) {
                ScenarioOptions sopts;
                sopts.config_hook = opts.config_hook;
                sopts.jobs = point_jobs;
                sopts.sample = opts.sample;
                if (!opts.telemetry_dir.empty())
                    sopts.telemetry_interval = opts.telemetry_interval;
                try {
                    out.metrics = runScenario(*s, sopts);
                } catch (const std::exception &e) {
                    out.threw = true;
                    out.error = e.what();
                    return out;
                }
            }
            out.golden_path = goldenPath(golden_dir, s->name);
            if (opts.update || out.sampled)
                return out; // golden written/skipped in the reduce
            try {
                out.result = checkAgainstGolden(loadGolden(out.golden_path),
                                                out.metrics);
            } catch (const std::exception &e) {
                out.golden_error = true;
                out.error = e.what();
            }
            return out;
        });
    }

    {
        // The silencer swaps the process-wide stdout fd, so it wraps
        // the whole parallel phase exactly once, never per worker.
        std::optional<StdoutSilencer> quiet;
        if (!opts.verbose)
            quiet.emplace();
        report.outcomes =
            exec::parallelMap<ScenarioOutcome>(jobs, std::move(tasks));
    }

    for (const auto &out : report.outcomes) {
        if (opts.update && !out.threw) {
            const Scenario *s = findScenario(out.name);
            saveGolden(out.golden_path, goldenFromRun(*s, out.metrics));
        }
        // The resume cache is written here in the serial reduce, after
        // a successful fresh run (never for resumed or thrown ones, so
        // a stale cache can't rewrite itself).
        if (!opts.checkpoint_dir.empty() && !out.threw && !out.resumed) {
            std::filesystem::create_directories(opts.checkpoint_dir);
            std::string path = metricsPath(opts.checkpoint_dir, out.name);
            std::string text = metricsToJson(out.metrics).dump(2) + "\n";
            if (std::FILE *f = std::fopen(path.c_str(), "w")) {
                std::fwrite(text.data(), 1, text.size(), f);
                std::fclose(f);
            } else {
                std::fprintf(stderr, "checkpoint-dir: cannot write %s\n",
                             path.c_str());
            }
        }
        // Telemetry files are written here in the serial reduce, never
        // from workers, so their contents and creation order match the
        // submission order at any jobs count.
        if (!opts.telemetry_dir.empty() && !out.metrics.telemetry.empty()) {
            std::filesystem::create_directories(opts.telemetry_dir);
            std::string path =
                opts.telemetry_dir + "/" + out.name + ".jsonl";
            if (std::FILE *f = std::fopen(path.c_str(), "w")) {
                std::fwrite(out.metrics.telemetry.data(), 1,
                            out.metrics.telemetry.size(), f);
                std::fclose(f);
            } else {
                std::fprintf(stderr,
                             "telemetry: cannot write %s\n", path.c_str());
            }
        }
        if (out.failed())
            ++report.failed;
    }
    return report;
}

} // namespace cedar::valid
