/**
 * @file
 * cedar_validate — the paper-fidelity golden harness runner.
 *
 * Runs every registered scenario headless, checks each emitted cell
 * against its golden record (drift band around the frozen reproduced
 * value, fidelity band around the paper value), and exits nonzero on
 * any failure. `--update-golden` refreezes the golden files from the
 * current build; `--perturb key=value` injects a machine-model change
 * to prove the suite catches regressions.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "core/cedar.hh"
#include "valid/golden.hh"
#include "valid/json.hh"
#include "valid/scenario.hh"

namespace {

using namespace cedar;
using namespace cedar::valid;

int
usage(const char *argv0, int code)
{
    std::fprintf(
        stderr,
        "usage: %s [options]\n"
        "  --list               list registered scenarios and exit\n"
        "  --filter SUBSTR      run only scenarios whose name contains "
        "SUBSTR (repeatable)\n"
        "  --fast               run only fast (tier-1) scenarios\n"
        "  --update-golden      refreeze golden files from this run\n"
        "  --json               emit a machine-readable report\n"
        "  --verbose            keep scenario table printing on stdout\n"
        "  --golden-dir DIR     override the golden directory\n"
        "  --perturb KEY=VALUE  perturb the machine config "
        "(repeatable); e.g. gm.module_conflict_extra=3\n",
        argv0);
    return code;
}

/** One perturbable knob: name -> setter. */
struct Knob
{
    const char *key;
    std::function<void(machine::CedarConfig &, double)> set;
};

const std::vector<Knob> &
knobs()
{
    static const std::vector<Knob> k = {
        {"num_clusters",
         [](machine::CedarConfig &c, double v) {
             c.num_clusters = unsigned(v);
         }},
        {"gm.module_conflict_extra",
         [](machine::CedarConfig &c, double v) {
             c.gm.module_conflict_extra = Cycles(v);
         }},
        {"gm.module_access_cycles",
         [](machine::CedarConfig &c, double v) {
             c.gm.module_access_cycles = Cycles(v);
         }},
        {"gm.sync_extra_cycles",
         [](machine::CedarConfig &c, double v) {
             c.gm.sync_extra_cycles = Cycles(v);
         }},
        {"gm.hop_latency",
         [](machine::CedarConfig &c, double v) {
             c.gm.hop_latency = Cycles(v);
         }},
        {"gm.word_occupancy",
         [](machine::CedarConfig &c, double v) {
             c.gm.word_occupancy = Cycles(v);
         }},
        {"gm.port_queue_words",
         [](machine::CedarConfig &c, double v) {
             c.gm.port_queue_words = unsigned(v);
         }},
        {"gm.num_modules",
         [](machine::CedarConfig &c, double v) {
             c.gm.num_modules = unsigned(v);
         }},
        {"cluster.pfu.issue_interval",
         [](machine::CedarConfig &c, double v) {
             c.cluster.pfu.issue_interval = Cycles(v);
         }},
        {"cluster.pfu.buffer_words",
         [](machine::CedarConfig &c, double v) {
             c.cluster.pfu.buffer_words = unsigned(v);
         }},
        {"cluster.pfu.page_cross_penalty",
         [](machine::CedarConfig &c, double v) {
             c.cluster.pfu.page_cross_penalty = Cycles(v);
         }},
        {"cluster.ce.vector_startup",
         [](machine::CedarConfig &c, double v) {
             c.cluster.ce.vector_startup = Cycles(v);
         }},
        {"cluster.ce.issue_cycles",
         [](machine::CedarConfig &c, double v) {
             c.cluster.ce.issue_cycles = Cycles(v);
         }},
        {"cluster.cache.words_per_cycle",
         [](machine::CedarConfig &c, double v) {
             c.cluster.cache.words_per_cycle = unsigned(v);
         }},
        {"cluster.cache.contention_penalty_pct",
         [](machine::CedarConfig &c, double v) {
             c.cluster.cache.contention_penalty_pct = unsigned(v);
         }},
        {"cluster.cmem.words_per_cycle",
         [](machine::CedarConfig &c, double v) {
             c.cluster.cmem.words_per_cycle = unsigned(v);
         }},
        {"cluster.cmem.latency",
         [](machine::CedarConfig &c, double v) {
             c.cluster.cmem.latency = Cycles(v);
         }},
    };
    return k;
}

struct Perturbation
{
    std::string key;
    double value;
};

} // namespace

int
main(int argc, char **argv)
{
    setLogQuiet(true);

    bool list = false, update = false, json = false, verbose = false;
    bool fast_only = false;
    std::string golden_dir;
    std::vector<std::string> filters;
    std::vector<Perturbation> perturbations;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&](const char *what) -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs %s\n", arg.c_str(), what);
                std::exit(usage(argv[0], 2));
            }
            return argv[++i];
        };
        if (arg == "--list") {
            list = true;
        } else if (arg == "--update-golden") {
            update = true;
        } else if (arg == "--json") {
            json = true;
        } else if (arg == "--verbose") {
            verbose = true;
        } else if (arg == "--fast") {
            fast_only = true;
        } else if (arg == "--filter") {
            filters.push_back(next("a name substring"));
        } else if (arg == "--golden-dir") {
            golden_dir = next("a directory");
        } else if (arg == "--perturb") {
            std::string spec = next("KEY=VALUE");
            auto eq = spec.find('=');
            if (eq == std::string::npos || eq == 0) {
                std::fprintf(stderr, "--perturb wants KEY=VALUE, got "
                                     "'%s'\n",
                             spec.c_str());
                return 2;
            }
            Perturbation p;
            p.key = spec.substr(0, eq);
            try {
                p.value = std::stod(spec.substr(eq + 1));
            } catch (const std::exception &) {
                std::fprintf(stderr, "--perturb %s: value is not a "
                                     "number\n",
                             spec.c_str());
                return 2;
            }
            bool known = false;
            for (const auto &k : knobs())
                known = known || p.key == k.key;
            if (!known) {
                std::fprintf(stderr, "--perturb: unknown knob '%s'; "
                                     "knobs:\n",
                             p.key.c_str());
                for (const auto &k : knobs())
                    std::fprintf(stderr, "  %s\n", k.key);
                return 2;
            }
            perturbations.push_back(std::move(p));
        } else if (arg == "--help" || arg == "-h") {
            return usage(argv[0], 0);
        } else {
            std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
            return usage(argv[0], 2);
        }
    }

    if (update && !perturbations.empty()) {
        std::fprintf(stderr,
                     "refusing --update-golden with --perturb: that "
                     "would freeze a perturbed machine as the truth\n");
        return 2;
    }

    if (golden_dir.empty())
        golden_dir = goldenDir();

    auto selected = [&](const Scenario &s) {
        if (fast_only && !s.fast)
            return false;
        if (filters.empty())
            return true;
        for (const auto &f : filters)
            if (s.name.find(f) != std::string::npos)
                return true;
        return false;
    };

    if (list) {
        for (const auto &s : allScenarios()) {
            if (!selected(s))
                continue;
            std::printf("%-22s %-5s %s\n", s.name.c_str(),
                        s.fast ? "fast" : "slow", s.title.c_str());
        }
        return 0;
    }

    ScenarioOptions opts;
    if (!perturbations.empty()) {
        opts.config_hook = [perturbations](machine::CedarConfig &cfg) {
            for (const auto &p : perturbations)
                for (const auto &k : knobs())
                    if (p.key == k.key)
                        k.set(cfg, p.value);
        };
    }

    unsigned ran = 0, failed = 0;
    Json report = Json::array();
    for (const auto &s : allScenarios()) {
        if (!selected(s))
            continue;
        ++ran;

        Metrics metrics;
        try {
            if (verbose) {
                metrics = runScenario(s, opts);
            } else {
                StdoutSilencer quiet;
                metrics = runScenario(s, opts);
            }
        } catch (const std::exception &e) {
            ++failed;
            std::fprintf(stderr, "FAIL %s: scenario threw: %s\n",
                         s.name.c_str(), e.what());
            continue;
        }

        std::string path = goldenPath(golden_dir, s.name);
        if (update) {
            saveGolden(path, goldenFromRun(s, metrics));
            std::fprintf(stderr, "wrote %s\n", path.c_str());
            continue;
        }

        CheckResult result;
        try {
            result = checkAgainstGolden(loadGolden(path), metrics);
        } catch (const std::exception &e) {
            ++failed;
            std::fprintf(stderr, "FAIL %s: %s\n", s.name.c_str(),
                         e.what());
            continue;
        }

        unsigned checked = unsigned(result.cells.size());
        if (!result.ok()) {
            ++failed;
            std::fprintf(stderr, "FAIL %s: %u of %u cells out of "
                                 "band\n%s",
                         s.name.c_str(),
                         result.failures +
                             unsigned(result.unknown_cells.size()),
                         checked, describeFailures(result).c_str());
        } else {
            std::fprintf(stderr, "ok   %-22s %3u cells\n",
                         s.name.c_str(), checked);
        }

        if (json) {
            Json sj = Json::object();
            sj.set("scenario", Json::of(s.name));
            sj.set("ok", Json::of(result.ok()));
            sj.set("failures", Json::of(double(result.failures)));
            Json cells = Json::array();
            for (const auto &c : result.cells) {
                Json cj = Json::object();
                cj.set("key", Json::of(c.key));
                cj.set("measured", Json::of(c.measured));
                cj.set("golden", Json::of(c.expected));
                if (c.paper == c.paper)
                    cj.set("paper", Json::of(c.paper));
                cj.set("drift", Json::of(c.drift_seen));
                cj.set("ok", Json::of(c.ok()));
                cells.push(std::move(cj));
            }
            sj.set("cells", std::move(cells));
            report.push(std::move(sj));
        }
    }

    if (json && !update) {
        Json top = Json::object();
        top.set("scenarios_run", Json::of(double(ran)));
        top.set("scenarios_failed", Json::of(double(failed)));
        top.set("ok", Json::of(failed == 0));
        top.set("results", std::move(report));
        std::printf("%s\n", top.dump(2).c_str());
    }

    if (ran == 0) {
        std::fprintf(stderr, "no scenario matched the filter\n");
        return 2;
    }
    if (update)
        return 0;
    std::fprintf(stderr, "%u scenario(s), %u failed\n", ran, failed);
    return failed == 0 ? 0 : 1;
}
