/**
 * @file
 * cedar_validate — the paper-fidelity golden harness runner.
 *
 * A thin CLI over valid::runValidation(): parses options, hands them
 * to the driver, prints the report. `--jobs N` runs scenarios
 * concurrently on a RunPool; the report is assembled in submission
 * order, so its bytes are identical for every N (tests/test_exec.cc
 * holds this to `--jobs 1` vs `--jobs 8`). `--update-golden`
 * refreezes the golden files from the current build; `--perturb
 * key=value` injects a machine-model change to prove the suite
 * catches regressions.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "core/cedar.hh"
#include "exec/runpool.hh"
#include "valid/driver.hh"
#include "valid/golden.hh"
#include "valid/json.hh"
#include "valid/scenario.hh"

namespace {

using namespace cedar;
using namespace cedar::valid;

int
usage(const char *argv0, int code)
{
    std::fprintf(
        stderr,
        "usage: %s [options]\n"
        "  --list               list registered scenarios and exit\n"
        "  --filter SUBSTR      run only scenarios whose name contains "
        "SUBSTR (repeatable)\n"
        "  --fast               run only fast (tier-1) scenarios\n"
        "  --jobs N             run up to N scenarios concurrently "
        "(default 1; report bytes are identical for any N)\n"
        "  --point-jobs N       worker budget for each scenario's "
        "internal sweep (default 1)\n"
        "  --update-golden      refreeze golden files from this run\n"
        "  --json               emit a machine-readable report\n"
        "  --verbose            keep scenario table printing on stdout "
        "(forces --jobs 1)\n"
        "  --golden-dir DIR     override the golden directory\n"
        "  --telemetry-dir DIR  stream interval telemetry, one "
        "DIR/<scenario>.jsonl per scenario (byte-identical at any "
        "--jobs)\n"
        "  --telemetry-interval N  sampling period in ticks "
        "(default 100000)\n"
        "  --checkpoint-dir DIR sweep resume cache: write "
        "DIR/<scenario>.metrics.json after each completed scenario\n"
        "  --resume             with --checkpoint-dir, reuse cached "
        "metrics instead of re-running completed scenarios\n"
        "  --sample             estimate phased scenarios via the "
        "live-point sampler (reported, not golden-checked)\n"
        "  --engine-threads N   run every scenario's machine under the "
        "parallel engine with N window workers (0: classic serial "
        "engine; results are bit-identical for any N)\n"
        "  --engine-partition-map NAME  logical-process map for the "
        "parallel engine: cluster (default) or coarse\n"
        "  --perturb KEY=VALUE  perturb the machine config "
        "(repeatable); e.g. gm.module_conflict_extra=3\n",
        argv0);
    return code;
}

/** One perturbable knob: name -> setter. */
struct Knob
{
    const char *key;
    std::function<void(machine::CedarConfig &, double)> set;
};

const std::vector<Knob> &
knobs()
{
    static const std::vector<Knob> k = {
        {"num_clusters",
         [](machine::CedarConfig &c, double v) {
             c.num_clusters = unsigned(v);
         }},
        {"gm.module_conflict_extra",
         [](machine::CedarConfig &c, double v) {
             c.gm.module_conflict_extra = Cycles(v);
         }},
        {"gm.module_access_cycles",
         [](machine::CedarConfig &c, double v) {
             c.gm.module_access_cycles = Cycles(v);
         }},
        {"gm.sync_extra_cycles",
         [](machine::CedarConfig &c, double v) {
             c.gm.sync_extra_cycles = Cycles(v);
         }},
        {"gm.hop_latency",
         [](machine::CedarConfig &c, double v) {
             c.gm.hop_latency = Cycles(v);
         }},
        {"gm.word_occupancy",
         [](machine::CedarConfig &c, double v) {
             c.gm.word_occupancy = Cycles(v);
         }},
        {"gm.port_queue_words",
         [](machine::CedarConfig &c, double v) {
             c.gm.port_queue_words = unsigned(v);
         }},
        {"gm.num_modules",
         [](machine::CedarConfig &c, double v) {
             c.gm.num_modules = unsigned(v);
         }},
        {"cluster.pfu.issue_interval",
         [](machine::CedarConfig &c, double v) {
             c.cluster.pfu.issue_interval = Cycles(v);
         }},
        {"cluster.pfu.buffer_words",
         [](machine::CedarConfig &c, double v) {
             c.cluster.pfu.buffer_words = unsigned(v);
         }},
        {"cluster.pfu.page_cross_penalty",
         [](machine::CedarConfig &c, double v) {
             c.cluster.pfu.page_cross_penalty = Cycles(v);
         }},
        {"cluster.ce.vector_startup",
         [](machine::CedarConfig &c, double v) {
             c.cluster.ce.vector_startup = Cycles(v);
         }},
        {"cluster.ce.issue_cycles",
         [](machine::CedarConfig &c, double v) {
             c.cluster.ce.issue_cycles = Cycles(v);
         }},
        {"cluster.cache.words_per_cycle",
         [](machine::CedarConfig &c, double v) {
             c.cluster.cache.words_per_cycle = unsigned(v);
         }},
        {"cluster.cache.contention_penalty_pct",
         [](machine::CedarConfig &c, double v) {
             c.cluster.cache.contention_penalty_pct = unsigned(v);
         }},
        {"cluster.cmem.words_per_cycle",
         [](machine::CedarConfig &c, double v) {
             c.cluster.cmem.words_per_cycle = unsigned(v);
         }},
        {"cluster.cmem.latency",
         [](machine::CedarConfig &c, double v) {
             c.cluster.cmem.latency = Cycles(v);
         }},
        {"gm.crossbar_arb_extra",
         [](machine::CedarConfig &c, double v) {
             c.gm.crossbar_arb_cycles =
                 c.gm.crossbar_arb_cycles + Cycles(v);
         }},
        {"gm.fat_tree_arity",
         [](machine::CedarConfig &c, double v) {
             c.gm.fat_tree_arity = unsigned(v);
         }},
    };
    return k;
}

struct Perturbation
{
    std::string key;
    double value;
};

unsigned
parseJobs(const char *arg, const char *flag)
{
    char *end = nullptr;
    long v = std::strtol(arg, &end, 10);
    if (!end || *end != '\0' || v < 1 || v > 1024) {
        std::fprintf(stderr, "%s wants a worker count in [1, 1024], "
                             "got '%s'\n",
                     flag, arg);
        std::exit(2);
    }
    return unsigned(v);
}

} // namespace

int
main(int argc, char **argv)
{
    setLogQuiet(true);

    bool list = false, json = false;
    ValidationOptions vopts;
    std::vector<Perturbation> perturbations;
    unsigned engine_threads = 0;
    std::string engine_map;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&](const char *what) -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs %s\n", arg.c_str(), what);
                std::exit(usage(argv[0], 2));
            }
            return argv[++i];
        };
        if (arg == "--list") {
            list = true;
        } else if (arg == "--update-golden") {
            vopts.update = true;
        } else if (arg == "--json") {
            json = true;
        } else if (arg == "--verbose") {
            vopts.verbose = true;
        } else if (arg == "--fast") {
            vopts.fast_only = true;
        } else if (arg == "--jobs" || arg == "-j") {
            vopts.jobs = parseJobs(next("a worker count"), "--jobs");
        } else if (arg == "--point-jobs") {
            vopts.point_jobs =
                parseJobs(next("a worker count"), "--point-jobs");
        } else if (arg == "--filter") {
            vopts.filters.push_back(next("a name substring"));
        } else if (arg == "--golden-dir") {
            vopts.golden_dir = next("a directory");
        } else if (arg == "--telemetry-dir") {
            vopts.telemetry_dir = next("a directory");
        } else if (arg == "--checkpoint-dir") {
            vopts.checkpoint_dir = next("a directory");
        } else if (arg == "--resume") {
            vopts.resume = true;
        } else if (arg == "--sample") {
            vopts.sample = true;
        } else if (arg == "--engine-threads") {
            const char *v = next("a thread count");
            char *end = nullptr;
            long t = std::strtol(v, &end, 10);
            if (!end || *end != '\0' || t < 0 || t > 256) {
                std::fprintf(stderr, "--engine-threads wants a count in "
                                     "[0, 256], got '%s'\n",
                             v);
                return 2;
            }
            engine_threads = unsigned(t);
        } else if (arg == "--engine-partition-map") {
            engine_map = next("cluster or coarse");
            if (engine_map != "cluster" && engine_map != "coarse") {
                std::fprintf(stderr, "--engine-partition-map wants "
                                     "'cluster' or 'coarse', got '%s'\n",
                             engine_map.c_str());
                return 2;
            }
        } else if (arg == "--telemetry-interval") {
            const char *v = next("a tick count");
            char *end = nullptr;
            long long ticks = std::strtoll(v, &end, 10);
            if (!end || *end != '\0' || ticks < 1) {
                std::fprintf(stderr, "--telemetry-interval wants a "
                                     "positive tick count, got '%s'\n",
                             v);
                return 2;
            }
            vopts.telemetry_interval = Tick(ticks);
        } else if (arg == "--perturb") {
            std::string spec = next("KEY=VALUE");
            auto eq = spec.find('=');
            if (eq == std::string::npos || eq == 0) {
                std::fprintf(stderr, "--perturb wants KEY=VALUE, got "
                                     "'%s'\n",
                             spec.c_str());
                return 2;
            }
            Perturbation p;
            p.key = spec.substr(0, eq);
            try {
                p.value = std::stod(spec.substr(eq + 1));
            } catch (const std::exception &) {
                std::fprintf(stderr, "--perturb %s: value is not a "
                                     "number\n",
                             spec.c_str());
                return 2;
            }
            bool known = false;
            for (const auto &k : knobs())
                known = known || p.key == k.key;
            if (!known) {
                std::fprintf(stderr, "--perturb: unknown knob '%s'; "
                                     "knobs:\n",
                             p.key.c_str());
                for (const auto &k : knobs())
                    std::fprintf(stderr, "  %s\n", k.key);
                return 2;
            }
            perturbations.push_back(std::move(p));
        } else if (arg == "--help" || arg == "-h") {
            return usage(argv[0], 0);
        } else {
            std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
            return usage(argv[0], 2);
        }
    }

    if (vopts.update && !perturbations.empty()) {
        std::fprintf(stderr,
                     "refusing --update-golden with --perturb: that "
                     "would freeze a perturbed machine as the truth\n");
        return 2;
    }
    if (vopts.resume && vopts.checkpoint_dir.empty()) {
        std::fprintf(stderr, "--resume needs --checkpoint-dir\n");
        return 2;
    }
    if (vopts.update && (vopts.resume || vopts.sample)) {
        std::fprintf(stderr,
                     "refusing --update-golden with --resume/--sample: "
                     "goldens must be frozen from a fresh full-detail "
                     "run\n");
        return 2;
    }

    if (list) {
        auto matches = [&](const Scenario &s) {
            if (vopts.fast_only && !s.fast)
                return false;
            if (vopts.filters.empty())
                return true;
            for (const auto &f : vopts.filters)
                if (s.name.find(f) != std::string::npos)
                    return true;
            return false;
        };
        unsigned shown = 0;
        for (const auto &s : allScenarios()) {
            if (!matches(s))
                continue;
            ++shown;
            std::printf("%-22s %-5s %s\n", s.name.c_str(),
                        s.fast ? "fast" : "slow", s.title.c_str());
        }
        if (shown == 0) {
            std::fprintf(stderr, "no scenario matched the filter\n");
            return 2;
        }
        return 0;
    }

    if (!perturbations.empty()) {
        vopts.config_hook = [perturbations](machine::CedarConfig &cfg) {
            for (const auto &p : perturbations)
                for (const auto &k : knobs())
                    if (p.key == k.key)
                        k.set(cfg, p.value);
        };
    }
    if (engine_threads > 0 || !engine_map.empty()) {
        // Compose onto any perturbation hook: every scenario machine is
        // then built under the chosen engine. The goldens do not change
        // — the parallel engine is bit-identical by contract, and CI
        // diffs full reports across --engine-threads values to prove it.
        auto prev = vopts.config_hook;
        vopts.config_hook = [prev, engine_threads,
                             engine_map](machine::CedarConfig &cfg) {
            if (prev)
                prev(cfg);
            cfg.engine_threads = engine_threads;
            if (!engine_map.empty())
                cfg.engine_partition_map = engine_map;
        };
    }

    ValidationReport report = runValidation(vopts);

    std::fputs(report.logText().c_str(), stderr);
    if (json && !vopts.update)
        std::printf("%s\n", report.jsonReport().dump(2).c_str());
    return report.exitCode();
}
