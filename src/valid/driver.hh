/**
 * @file
 * The validation driver: the library form of `cedar_validate`.
 *
 * runValidation() selects scenarios, runs them (optionally on a
 * RunPool with `jobs` workers), golden-checks each one, and returns a
 * ValidationReport whose rendered forms — logText() and jsonReport()
 * — are assembled from outcomes held in *submission order*. Runs may
 * finish out of order across workers, but the report is byte-for-byte
 * identical for any worker count; tests/test_exec.cc enforces this.
 */

#ifndef CEDARSIM_VALID_DRIVER_HH
#define CEDARSIM_VALID_DRIVER_HH

#include <functional>
#include <string>
#include <vector>

#include "machine/config.hh"
#include "valid/golden.hh"
#include "valid/json.hh"
#include "valid/scenario.hh"

namespace cedar::valid {

/** Everything the cedar_validate CLI can ask for, minus arg parsing. */
struct ValidationOptions
{
    /** Refreeze golden files instead of checking against them. */
    bool update = false;
    /** Keep scenario table printing on stdout (forces jobs = 1). */
    bool verbose = false;
    /** Run only fast (tier-1) scenarios. */
    bool fast_only = false;
    /**
     * Scenario-level parallelism: how many scenarios run concurrently
     * on the RunPool. <= 1 takes the literal inline serial path.
     */
    unsigned jobs = 1;
    /**
     * Point-level parallelism handed to each scenario for its internal
     * sweep (ScenarioOptions::jobs). Keep 1 when jobs > 1 — nesting
     * pools multiplies threads without adding runnable work.
     */
    unsigned point_jobs = 1;
    /** Golden directory override; empty means goldenDir(). */
    std::string golden_dir;
    /** Name substrings; empty means every scenario. */
    std::vector<std::string> filters;
    /** Machine-config perturbation applied to every run (re-entrant). */
    std::function<void(machine::CedarConfig &)> config_hook;
    /**
     * When nonempty, every scenario streams interval telemetry and the
     * driver writes <dir>/<scenario>.jsonl from the serial reduce —
     * files are byte-identical at any jobs count. Each scenario's
     * internal sweep runs serially while telemetry is on.
     */
    std::string telemetry_dir;
    /** Sampling period for --telemetry-dir runs, in ticks. */
    Tick telemetry_interval = 100'000;
    /**
     * When nonempty, every completed scenario's metrics are written to
     * <dir>/<scenario>.metrics.json from the serial reduce — the
     * sweep's resumable checkpoint. With `resume` additionally set,
     * scenarios whose metrics file already exists are not re-run:
     * their cached metrics are loaded and golden-checked exactly as a
     * fresh run's would be, so an interrupted validation sweep picks
     * up where it left off.
     */
    std::string checkpoint_dir;
    /** Reuse cached metrics from checkpoint_dir instead of re-running. */
    bool resume = false;
    /**
     * Run scenarios in sampled-simulation mode (ScenarioOptions::
     * sample). Sampled estimates are reported but never golden-checked
     * (and never frozen): the golden files pin the full-detail path.
     */
    bool sample = false;
};

/** What happened to one scenario, in submission order. */
struct ScenarioOutcome
{
    std::string name;
    /** The scenario's run function threw; `error` holds what(). */
    bool threw = false;
    /** Golden load/check threw (missing/malformed file). */
    bool golden_error = false;
    std::string error;
    /** Valid when the scenario ran and update mode is off. */
    CheckResult result;
    /** Path written in update mode. */
    std::string golden_path;
    Metrics metrics;
    /** Metrics came from the checkpoint-dir cache, not a fresh run. */
    bool resumed = false;
    /** Run was a sampled estimate; golden checking was skipped. */
    bool sampled = false;

    bool
    failed() const
    {
        if (threw || golden_error)
            return true;
        return sampled ? false : !result.ok();
    }
};

/** The full result of one validation pass. */
struct ValidationReport
{
    bool update = false;
    unsigned ran = 0;
    unsigned failed = 0;
    std::vector<ScenarioOutcome> outcomes;

    /**
     * The exact text cedar_validate prints to stderr: per-scenario
     * ok/FAIL/wrote lines in submission order plus the summary line.
     */
    std::string logText() const;

    /** The exact `--json` report object (top-level "ok" etc). */
    Json jsonReport() const;

    /** 2 when nothing matched, 0 for update mode, else failed?1:0. */
    int exitCode() const;
};

/**
 * Run the selected scenarios and golden-check them.
 *
 * With opts.jobs > 1 the scenarios execute on a RunPool; each run
 * constructs its own machines, simulations, and stat registries inside
 * the task (per-run isolation, DESIGN.md §10), and outcomes are merged
 * back by submission index. Unless opts.verbose, stdout is silenced
 * for the whole pass — scenario table printing from concurrent workers
 * would interleave. Golden files are written (update mode) from the
 * serial reduce phase, never from workers.
 */
ValidationReport runValidation(const ValidationOptions &opts);

} // namespace cedar::valid

#endif // CEDARSIM_VALID_DRIVER_HH
