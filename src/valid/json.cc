/**
 * @file
 * JSON parsing and serialization for the golden files.
 */

#include "valid/json.hh"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace cedar::valid {

namespace {

[[noreturn]] void
typeError(const char *want, Json::Type got)
{
    static const char *names[] = {"null", "boolean", "number",
                                  "string", "array", "object"};
    throw std::runtime_error(std::string("json: expected ") + want +
                             ", found " +
                             names[static_cast<int>(got)]);
}

/** Cursor over the input with position tracking for error messages. */
struct Parser
{
    const std::string &text;
    std::size_t pos = 0;

    [[noreturn]] void
    fail(const std::string &msg) const
    {
        unsigned line = 1, col = 1;
        for (std::size_t i = 0; i < pos && i < text.size(); ++i) {
            if (text[i] == '\n') {
                ++line;
                col = 1;
            } else {
                ++col;
            }
        }
        throw std::runtime_error("json: " + msg + " at line " +
                                 std::to_string(line) + ", column " +
                                 std::to_string(col));
    }

    void
    skipSpace()
    {
        while (pos < text.size() &&
               std::isspace(static_cast<unsigned char>(text[pos])))
            ++pos;
    }

    char
    peek()
    {
        skipSpace();
        if (pos >= text.size())
            fail("unexpected end of input");
        return text[pos];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "'");
        ++pos;
    }

    bool
    consume(char c)
    {
        if (pos < text.size() && peek() == c) {
            ++pos;
            return true;
        }
        return false;
    }

    void
    literal(const char *word)
    {
        for (const char *p = word; *p; ++p) {
            if (pos >= text.size() || text[pos] != *p)
                fail(std::string("bad literal (expected ") + word + ")");
            ++pos;
        }
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        while (true) {
            if (pos >= text.size())
                fail("unterminated string");
            char c = text[pos++];
            if (c == '"')
                return out;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos >= text.size())
                fail("unterminated escape");
            char e = text[pos++];
            switch (e) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'n': out += '\n'; break;
              case 't': out += '\t'; break;
              case 'r': out += '\r'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'u': {
                if (pos + 4 > text.size())
                    fail("truncated \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    char h = text[pos++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code += h - '0';
                    else if (h >= 'a' && h <= 'f')
                        code += 10 + h - 'a';
                    else if (h >= 'A' && h <= 'F')
                        code += 10 + h - 'A';
                    else
                        fail("bad \\u escape digit");
                }
                // Golden files are ASCII; encode BMP code points UTF-8.
                if (code < 0x80) {
                    out += static_cast<char>(code);
                } else if (code < 0x800) {
                    out += static_cast<char>(0xC0 | (code >> 6));
                    out += static_cast<char>(0x80 | (code & 0x3F));
                } else {
                    out += static_cast<char>(0xE0 | (code >> 12));
                    out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
                    out += static_cast<char>(0x80 | (code & 0x3F));
                }
                break;
              }
              default: fail("unknown escape");
            }
        }
    }

    Json
    parseNumber()
    {
        std::size_t start = pos;
        if (pos < text.size() && (text[pos] == '-' || text[pos] == '+'))
            ++pos;
        bool digits = false;
        auto eatDigits = [&] {
            while (pos < text.size() &&
                   std::isdigit(static_cast<unsigned char>(text[pos]))) {
                ++pos;
                digits = true;
            }
        };
        eatDigits();
        if (pos < text.size() && text[pos] == '.') {
            ++pos;
            eatDigits();
        }
        if (pos < text.size() && (text[pos] == 'e' || text[pos] == 'E')) {
            ++pos;
            if (pos < text.size() &&
                (text[pos] == '-' || text[pos] == '+'))
                ++pos;
            eatDigits();
        }
        if (!digits)
            fail("malformed number");
        return Json::of(std::strtod(text.c_str() + start, nullptr));
    }

    Json
    parseValue(int depth)
    {
        if (depth > 64)
            fail("nesting too deep");
        char c = peek();
        switch (c) {
          case '{': {
            ++pos;
            Json obj = Json::object();
            skipSpace();
            if (consume('}'))
                return obj;
            while (true) {
                std::string key = parseString();
                expect(':');
                obj.set(key, parseValue(depth + 1));
                if (consume(','))
                    continue;
                expect('}');
                return obj;
            }
          }
          case '[': {
            ++pos;
            Json arr = Json::array();
            skipSpace();
            if (consume(']'))
                return arr;
            while (true) {
                arr.push(parseValue(depth + 1));
                if (consume(','))
                    continue;
                expect(']');
                return arr;
            }
          }
          case '"': return Json::of(parseString());
          case 't': literal("true"); return Json::of(true);
          case 'f': literal("false"); return Json::of(false);
          case 'n': literal("null"); return Json::makeNull();
          default: return parseNumber();
        }
    }
};

} // namespace

Json
Json::of(bool b)
{
    Json j;
    j._type = Type::boolean;
    j._bool = b;
    return j;
}

Json
Json::of(double v)
{
    Json j;
    j._type = Type::number;
    j._number = v;
    return j;
}

Json
Json::of(const std::string &s)
{
    Json j;
    j._type = Type::string;
    j._string = s;
    return j;
}

Json
Json::array()
{
    Json j;
    j._type = Type::array;
    return j;
}

Json
Json::object()
{
    Json j;
    j._type = Type::object;
    return j;
}

bool
Json::asBool() const
{
    if (_type != Type::boolean)
        typeError("boolean", _type);
    return _bool;
}

double
Json::asNumber() const
{
    if (_type != Type::number)
        typeError("number", _type);
    return _number;
}

const std::string &
Json::asString() const
{
    if (_type != Type::string)
        typeError("string", _type);
    return _string;
}

std::size_t
Json::size() const
{
    if (_type == Type::array)
        return _array.size();
    if (_type == Type::object)
        return _object.size();
    typeError("array or object", _type);
}

const Json &
Json::at(std::size_t i) const
{
    if (_type != Type::array)
        typeError("array", _type);
    if (i >= _array.size())
        throw std::runtime_error("json: array index out of range");
    return _array[i];
}

void
Json::push(Json v)
{
    if (_type != Type::array)
        typeError("array", _type);
    _array.push_back(std::move(v));
}

const Json *
Json::get(const std::string &key) const
{
    if (_type != Type::object)
        typeError("object", _type);
    for (const auto &[k, v] : _object)
        if (k == key)
            return &v;
    return nullptr;
}

void
Json::set(const std::string &key, Json v)
{
    if (_type != Type::object)
        typeError("object", _type);
    for (auto &[k, existing] : _object) {
        if (k == key) {
            existing = std::move(v);
            return;
        }
    }
    _object.emplace_back(key, std::move(v));
}

const std::vector<std::pair<std::string, Json>> &
Json::members() const
{
    if (_type != Type::object)
        typeError("object", _type);
    return _object;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(c));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

namespace {

std::string
numberText(double v)
{
    if (!std::isfinite(v))
        return "null";
    if (v == std::floor(v) && std::abs(v) < 1e15) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.0f", v);
        return buf;
    }
    // Shortest round-trip representation up to 17 significant digits.
    for (int prec = 9; prec <= 17; ++prec) {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.*g", prec, v);
        if (std::strtod(buf, nullptr) == v)
            return buf;
    }
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

} // namespace

void
Json::dumpTo(std::string &out, int indent, int depth) const
{
    auto newline = [&](int d) {
        if (indent <= 0)
            return;
        out += '\n';
        out.append(static_cast<std::size_t>(indent) * d, ' ');
    };
    switch (_type) {
      case Type::null: out += "null"; break;
      case Type::boolean: out += _bool ? "true" : "false"; break;
      case Type::number: out += numberText(_number); break;
      case Type::string:
        out += '"' + jsonEscape(_string) + '"';
        break;
      case Type::array: {
        if (_array.empty()) {
            out += "[]";
            break;
        }
        out += '[';
        for (std::size_t i = 0; i < _array.size(); ++i) {
            if (i)
                out += ',';
            newline(depth + 1);
            _array[i].dumpTo(out, indent, depth + 1);
        }
        newline(depth);
        out += ']';
        break;
      }
      case Type::object: {
        if (_object.empty()) {
            out += "{}";
            break;
        }
        out += '{';
        bool first = true;
        for (const auto &[k, v] : _object) {
            if (!first)
                out += ',';
            first = false;
            newline(depth + 1);
            out += '"' + jsonEscape(k) + "\":";
            if (indent > 0)
                out += ' ';
            v.dumpTo(out, indent, depth + 1);
        }
        newline(depth);
        out += '}';
        break;
      }
    }
}

std::string
Json::dump(int indent) const
{
    std::string out;
    dumpTo(out, indent, 0);
    if (indent > 0)
        out += '\n';
    return out;
}

Json
Json::parse(const std::string &text)
{
    Parser p{text};
    Json v = p.parseValue(0);
    p.skipSpace();
    if (p.pos != text.size())
        p.fail("trailing content after document");
    return v;
}

} // namespace cedar::valid
