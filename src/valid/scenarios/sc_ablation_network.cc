/**
 * @file
 * Scenario: network / prefetch design-space ablations on the
 * 4-cluster GM/pref rank-64 update. These calibrate DESIGN.md
 * decisions rather than paper cells, so most cells are drift
 * tripwires; the qualitative facts (conflict-extra monotonicity, the
 * ideal-fluid network failing to saturate, pacing insensitivity at
 * saturation, block-size amortization) are exact property cells.
 */

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "core/cedar.hh"
#include "exec/parallel.hh"
#include "valid/scenario.hh"

namespace cedar::valid {

namespace {

double
rank64Mflops(const ScenarioContext &ctx, machine::CedarConfig cfg,
             unsigned prefetch_block, unsigned n = 256)
{
    ctx.tune(cfg);
    machine::CedarMachine machine(cfg);
    ctx.observe(machine, "rank64 n=" + std::to_string(n) +
                             " pfblock=" + std::to_string(prefetch_block));
    kernels::Rank64Params params;
    params.n = n;
    params.clusters = 4;
    params.version = kernels::Rank64Version::gm_prefetch;
    params.prefetch_block = prefetch_block;
    return kernels::runRank64(machine, params).mflopsRate();
}

void
runAblationNetwork(ScenarioContext &ctx)
{
    const double nan = std::numeric_limits<double>::quiet_NaN();
    std::printf("Network / prefetch ablations (rank-64 GM/pref, 4 "
                "clusters; paper Table 1 value: 104 MFLOPS)\n\n");

    // All fourteen ablation points are independent machine runs; fan
    // them out, then print tables and emit cells from the merged
    // results in the original order (byte-identical for any jobs).
    std::vector<std::function<double(exec::RunContext &)>> tasks;
    auto point = [&tasks](std::function<double()> fn) {
        std::size_t index = tasks.size();
        tasks.push_back(
            [fn = std::move(fn)](exec::RunContext &) { return fn(); });
        return index;
    };

    std::size_t conflict_at[4], modules_at[3], pacing_at[4] = {},
                                               block_at[4];
    for (Cycles extra : {0u, 1u, 2u, 3u}) {
        conflict_at[extra] = point([&ctx, extra] {
            machine::CedarConfig cfg;
            cfg.gm.module_conflict_extra = extra;
            return rank64Mflops(ctx, cfg, 256);
        });
    }
    {
        const std::pair<unsigned, Cycles> shapes[3] = {
            {16, 1}, {32, 2}, {32, 1}};
        for (int i = 0; i < 3; ++i) {
            modules_at[i] = point([&ctx, shape = shapes[i]] {
                machine::CedarConfig cfg;
                cfg.gm.num_modules = shape.first;
                cfg.gm.module_access_cycles = shape.second;
                return rank64Mflops(ctx, cfg, 256);
            });
        }
    }
    for (Cycles interval : {1u, 2u, 3u}) {
        pacing_at[interval] = point([&ctx, interval] {
            machine::CedarConfig cfg;
            cfg.cluster.pfu.issue_interval = interval;
            return rank64Mflops(ctx, cfg, 256);
        });
    }
    {
        const unsigned blocks[4] = {32, 64, 128, 256};
        for (int i = 0; i < 4; ++i) {
            block_at[i] = point([&ctx, block = blocks[i]] {
                machine::CedarConfig cfg;
                return rank64Mflops(ctx, cfg, block);
            });
        }
    }
    auto rates = exec::parallelMap<double>(ctx.jobs(), std::move(tasks));

    double conflict_rate[4];
    {
        core::TableWriter t({"module conflict extra (cycles)", "MFLOPS"});
        for (Cycles extra : {0u, 1u, 2u, 3u}) {
            double rate = rates[conflict_at[extra]];
            conflict_rate[extra] = rate;
            ctx.cell("conflict_extra_" + std::to_string(extra) +
                         "_mflops",
                     rate,
                     {nan, 0.0, 1e-6,
                      "rank-64 GM/pref with conflict extra = " +
                          std::to_string(extra)});
            t.row({core::fmt(extra, 0), core::fmt(rate)});
        }
        t.print();
        std::printf("(the shipped default is 2; 0 is the ideal-fluid "
                    "network that fails to saturate)\n\n");
    }
    ctx.cell("conflict_monotone",
             (conflict_rate[0] > conflict_rate[1] &&
              conflict_rate[1] > conflict_rate[2] &&
              conflict_rate[2] > conflict_rate[3])
                 ? 1.0
                 : 0.0,
             {1.0, 0.0, 0.0,
              "rate falls monotonically with the arbitration loss"});
    ctx.cell("ideal_fluid_overshoots",
             conflict_rate[0] > 1.3 * conflict_rate[2] ? 1.0 : 0.0,
             {1.0, 0.0, 0.0,
              "the conflict-free network misses the paper's 3-4 "
              "cluster saturation"});

    {
        core::TableWriter t(
            {"modules x access cycles", "peak w/cyc", "MFLOPS"});
        int shape = 0;
        for (auto [mods, access] :
             {std::pair<unsigned, Cycles>{16, 1}, {32, 2}, {32, 1}}) {
            double rate = rates[modules_at[shape++]];
            ctx.cell("modules_" + std::to_string(mods) + "x" +
                         std::to_string(access) + "_mflops",
                     rate,
                     {nan, 0.0, 1e-6,
                      "module sweep at constant/doubled peak bandwidth"});
            t.row({core::fmt(mods, 0) + " x " + core::fmt(access, 0),
                   core::fmt(double(mods) / access, 0),
                   core::fmt(rate)});
        }
        t.print();
        std::printf("(32 x 2 matches the 768 MB/s global bandwidth; "
                    "32 x 1 doubles it)\n\n");
    }

    double pacing_rate[4] = {};
    {
        core::TableWriter t({"PFU issue interval", "per-CE MB/s",
                             "MFLOPS"});
        for (Cycles interval : {1u, 2u, 3u}) {
            double mb =
                bytes_per_word / (interval * ce_cycle_ns * 1e-9) / 1e6;
            double rate = rates[pacing_at[interval]];
            pacing_rate[interval] = rate;
            ctx.cell("pacing_" + std::to_string(interval) + "_mflops",
                     rate,
                     {nan, 0.0, 1e-6,
                      "PFU issue pacing (interval 2 is the 24 MB/s "
                      "share)"});
            t.row({core::fmt(interval, 0), core::fmt(mb, 0),
                   core::fmt(rate)});
        }
        t.print();
        std::printf("(interval 2 realizes the paper's 24 MB/s per "
                    "processor)\n\n");
    }
    ctx.cell("pacing_insensitive_at_saturation",
             pacing_rate[1] / pacing_rate[3],
             {1.0, 0.05, 1e-6,
              "the saturated memory system hides the per-CE pacing"});

    double block_rate_32 = 0.0, block_rate_256 = 0.0;
    {
        core::TableWriter t({"prefetch block (words)", "MFLOPS"});
        int bi = 0;
        for (unsigned block : {32u, 64u, 128u, 256u}) {
            double rate = rates[block_at[bi++]];
            if (block == 32)
                block_rate_32 = rate;
            if (block == 256)
                block_rate_256 = rate;
            ctx.cell("block_" + std::to_string(block) + "_mflops", rate,
                     {nan, 0.0, 1e-6,
                      "prefetch block-size sweep on GM/pref rank-64"});
            t.row({core::fmt(block, 0), core::fmt(rate)});
        }
        t.print();
        std::printf("(the hand RK kernel's 256-word blocks amortize the "
                    "fire/consume pipeline bubbles)\n");
    }
    ctx.cell("block_amortization",
             block_rate_256 >= block_rate_32 ? 1.0 : 0.0,
             {1.0, 0.0, 0.0,
              "256-word blocks never lose to the compiler's 32-word "
              "blocks"});
}

} // namespace

namespace detail {

void
registerAblationNetwork()
{
    registerScenario({"ablation_network",
                      "Network / prefetch design-space ablations", false,
                      runAblationNetwork});
}

} // namespace detail

} // namespace cedar::valid
