/**
 * @file
 * Scenario: Section 4.2 — the Xylem virtual-memory study behind
 * TRFD's final rewrite: a shared multicluster sweep takes almost four
 * times the page faults of the one-cluster version (TLB-miss faults
 * on pages whose PTE is already valid), and a distributed layout
 * removes them.
 */

#include <cstdio>

#include "core/cedar.hh"
#include "valid/scenario.hh"
#include "xylem/vm.hh"

namespace cedar::valid {

namespace {

/** Sweep a working set of pages from a set of clusters, TRFD-style:
 *  every cluster's CEs walk the whole shared array each pass. */
void
sharedSweep(xylem::VirtualMemory &vm, unsigned clusters, unsigned pages,
            unsigned passes)
{
    for (unsigned pass = 0; pass < passes; ++pass)
        for (unsigned page = 0; page < pages; ++page)
            for (unsigned c = 0; c < clusters; ++c)
                vm.translate(c, mem::globalAddr(Addr(page) *
                                                mem::words_per_page));
}

/** Distributed version: each cluster only touches its own partition. */
void
distributedSweep(xylem::VirtualMemory &vm, unsigned clusters,
                 unsigned pages, unsigned passes)
{
    unsigned per = pages / clusters;
    for (unsigned pass = 0; pass < passes; ++pass)
        for (unsigned c = 0; c < clusters; ++c)
            for (unsigned p = c * per; p < (c + 1) * per; ++p)
                vm.translate(c, mem::globalAddr(Addr(p) *
                                                mem::words_per_page));
}

std::uint64_t
totalFaults(const xylem::VirtualMemory &vm, unsigned clusters)
{
    std::uint64_t total = 0;
    for (unsigned c = 0; c < clusters; ++c)
        total += vm.faults(c);
    return total;
}

void
runVmStudy(ScenarioContext &ctx)
{
    // TRFD's working set is much larger than a 64-entry TLB: many
    // passes over a multi-megabyte array.
    const unsigned pages = 1024; // 4 MB
    const unsigned passes = 8;

    std::printf("Xylem virtual memory: the TRFD page-fault study "
                "([MaEG92], Section 4.2)\n\n");

    xylem::VirtualMemory one("vm1", 4);
    sharedSweep(one, 1, pages, passes);
    std::uint64_t faults_one = totalFaults(one, 4);

    xylem::VirtualMemory four("vm4", 4);
    sharedSweep(four, 4, pages, passes);
    std::uint64_t faults_four = totalFaults(four, 4);

    xylem::VirtualMemory dist("vmd", 4);
    distributedSweep(dist, 4, pages, passes);
    std::uint64_t faults_dist = totalFaults(dist, 4);

    core::TableWriter table({"version", "page faults", "vs 1-cluster",
                             "refill faults"});
    table.row({"one cluster", core::fmt(faults_one, 0), "1.0x",
               core::fmt(one.refills(), 0)});
    table.row({"four clusters, shared", core::fmt(faults_four, 0),
               core::fmt(double(faults_four) / faults_one, 1) + "x",
               core::fmt(four.refills(), 0)});
    table.row({"four clusters, distributed", core::fmt(faults_dist, 0),
               core::fmt(double(faults_dist) / faults_one, 1) + "x",
               core::fmt(dist.refills(), 0)});
    table.print();
    std::printf("(paper: the multicluster version had almost four "
                "times the faults of the one-cluster\n version; the "
                "extra faults are TLB-miss faults on pages whose PTE "
                "is already valid)\n\n");

    // VM time share: compare VM cycles to a TRFD-sized compute time.
    // TRFD's improved version ran 11.5 s, with close to 50% in VM.
    double vm_s = 0.0;
    for (unsigned c = 0; c < 4; ++c)
        vm_s += ticksToSeconds(four.vmCycles(c));
    std::printf("four-cluster VM activity: %.2f s total across "
                "clusters for %u passes;\n",
                vm_s, passes);
    std::printf("scaled to TRFD's full pass count this is the ~50%% "
                "of the 11.5 s run the paper\nmeasured, removed by the "
                "distributed version (%.1fx fewer faults).\n",
                double(faults_four) / faults_dist);

    const double nan = std::numeric_limits<double>::quiet_NaN();
    ctx.cell("faults_one_cluster", double(faults_one),
             {nan, 0.0, 0.0, "one-cluster shared-sweep fault count"});
    ctx.cell("faults_four_shared", double(faults_four),
             {nan, 0.0, 0.0, "four-cluster shared-sweep fault count"});
    ctx.cell("faults_four_distributed", double(faults_dist),
             {nan, 0.0, 0.0, "four-cluster distributed fault count"});
    ctx.cell("fault_ratio_shared", double(faults_four) / faults_one,
             {4.0, 0.05, 1e-6,
              "Sec. 4.2: almost four times the faults of one cluster"});
    ctx.cell("fault_ratio_distributed", double(faults_dist) / faults_one,
             {1.0, 0.05, 1e-6,
              "Sec. 4.2: the distributed version removes the excess"});
    ctx.cell("vm_seconds_four_shared", vm_s,
             {nan, 0.0, 1e-6, "VM activity per 8-pass shared sweep"});
}

} // namespace

namespace detail {

void
registerVmStudy()
{
    registerScenario({"vm_study",
                      "Section 4.2 - Xylem VM page-fault study", true,
                      runVmStudy});
}

} // namespace detail

} // namespace cedar::valid
