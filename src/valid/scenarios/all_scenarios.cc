/**
 * @file
 * The one place every scenario registrar is named. Called lazily from
 * allScenarios(); registration order is EXPERIMENTS.md order, which
 * is the order `cedar_validate --list` and the golden directory
 * present to a reader.
 */

#include "valid/scenario.hh"

namespace cedar::valid::detail {

void registerFig12Topology();
void registerTable1Rank64();
void registerTable2Memory();
void registerTable3Perfect();
void registerTable4Handopt();
void registerTable5Stability();
void registerTable6Bands();
void registerFig3Scatter();
void registerPpt4Scalability();
void registerPpt5Scaled();
void registerVmStudy();
void registerSec33Restructuring();
void registerAblationRuntime();
void registerAblationNetwork();
void registerSampledRank64();
void registerTrafficMatrix();
void registerTrafficScale256();
void registerScaledParallelism();

void
registerAllScenarios()
{
    registerFig12Topology();
    registerTable1Rank64();
    registerTable2Memory();
    registerTable3Perfect();
    registerTable4Handopt();
    registerTable5Stability();
    registerTable6Bands();
    registerFig3Scatter();
    registerPpt4Scalability();
    registerPpt5Scaled();
    registerVmStudy();
    registerSec33Restructuring();
    registerAblationRuntime();
    registerAblationNetwork();
    registerSampledRank64();
    registerTrafficMatrix();
    registerTrafficScale256();
    registerScaledParallelism();
}

} // namespace cedar::valid::detail
