/**
 * @file
 * Scenario: sampled simulation agreement — the live-point sampler
 * (src/sample) estimating a phased rank-64 workload against the full
 * detailed run, plus the bit-identity guarantees the checkpoint layer
 * promises (DESIGN.md §11).
 *
 * The workload is `total_units` back-to-back rank-64 updates on one
 * machine. Four properties are pinned:
 *
 *  - agreement: the CI-driven sampled estimate matches the full-run
 *    mean (exactly, for this homogeneous workload);
 *  - warm_restore_identical: warm-up + saveCheckpoint + restore into a
 *    fresh machine + remaining units produces a byte-identical stat
 *    dump to the uninterrupted run (host-time scalars erased);
 *  - live_point_stable: the live-point the sampler saves is
 *    byte-identical to one saved by hand at the same unit boundary;
 *  - reuse_identical: re-running the sampler from the cached
 *    live-point (warm-checkpoint reuse) reproduces the estimate.
 *
 * No paper numbers exist for these cells; they are self-checks with
 * exact targets, golden-frozen so any nondeterminism or serialization
 * drift fails tier-1 CI.
 */

#include <cstdio>
#include <limits>
#include <memory>
#include <numeric>
#include <sstream>
#include <string>
#include <vector>

#include "core/cedar.hh"
#include "sample/sample.hh"
#include "valid/scenario.hh"

namespace cedar::valid {

namespace {

/** Registry text dump without the wall-clock-derived host scalars —
 *  the only entries that legitimately differ between identical runs. */
std::string
strippedStats(machine::CedarMachine &m)
{
    std::istringstream in(m.stats().dumpText());
    std::string line, out;
    while (std::getline(in, line)) {
        if (line.find(".host_") == std::string::npos) {
            out += line;
            out += '\n';
        }
    }
    return out;
}

void
runSampledRank64(ScenarioContext &ctx)
{
    const unsigned n = ctx.sizeOr(192);
    // --sample mode drops the full-detail reference and twin checks
    // and estimates a 4x longer workload through the sampler alone —
    // the speed-for-coverage trade the flag exists for.
    const unsigned total_units = ctx.sampleMode() ? 24 : 6;

    kernels::Rank64Params params;
    params.n = n;
    params.clusters = 2;
    params.version = kernels::Rank64Version::gm_prefetch;

    sample::MachineFactory factory = [&ctx] {
        return std::make_unique<machine::CedarMachine>(ctx.config());
    };
    sample::PhasedWorkload wl;
    wl.total_units = total_units;
    wl.run_unit = [params](machine::CedarMachine &m, unsigned) {
        double flops0 = m.totalFlops();
        Tick tick0 = m.sim().curTick();
        kernels::runRank64(m, params);
        return mflops(m.totalFlops() - flops0,
                      m.sim().curTick() - tick0);
    };

    std::printf("Sampled simulation: %u-unit rank-64 workload "
                "(n = %u, 2 clusters, GM/pref)\n\n",
                total_units, n);

    if (ctx.sampleMode()) {
        sample::SampleParams sp;
        sp.warmup_units = 2;
        sp.min_windows = 3;
        sp.target_rel_ci = 0.05;
        sample::SampledRun est = sample::runSampled(factory, wl, sp);
        std::printf("sampled estimate: %.2f MFLOPS over %u window(s) "
                    "(rel CI %.4f, detail speedup %.2fx)\n",
                    est.mean, est.windows, est.rel_ci,
                    est.speedup_factor);
        ctx.metric("n", n);
        ctx.metric("total_units", total_units);
        ctx.metric("estimate_mflops", est.mean);
        ctx.metric("windows", est.windows);
        ctx.metric("rel_ci", est.rel_ci);
        ctx.metric("speedup_factor", est.speedup_factor);
        return;
    }

    // Reference: every unit in detail on one machine.
    std::vector<double> unit_rates;
    std::string full_dump;
    {
        auto m = factory();
        for (unsigned u = 0; u < total_units; ++u)
            unit_rates.push_back(wl.run_unit(*m, u));
        full_dump = strippedStats(*m);
    }
    double full_mean =
        std::accumulate(unit_rates.begin(), unit_rates.end(), 0.0) /
        static_cast<double>(total_units);

    std::printf("full run units (MFLOPS):");
    for (double r : unit_rates)
        std::printf(" %.2f", r);
    std::printf("  mean %.2f\n", full_mean);

    sample::SampleParams sp;
    sp.warmup_units = 2;
    sp.min_windows = 2;
    sp.max_windows = 3;
    sp.target_rel_ci = 0.05;

    // Interrupted twin: warm-up, checkpoint, restore into a fresh
    // machine, run the rest. Must be byte-identical to the reference.
    std::string live_point;
    std::string resumed_dump;
    {
        auto warm = factory();
        for (unsigned u = 0; u < sp.warmup_units; ++u)
            wl.run_unit(*warm, u);
        live_point = warm->saveCheckpoint();

        auto resumed = factory();
        resumed->restoreCheckpoint(live_point);
        for (unsigned u = sp.warmup_units; u < total_units; ++u)
            wl.run_unit(*resumed, u);
        resumed_dump = strippedStats(*resumed);
    }
    bool restore_identical = full_dump == resumed_dump;
    std::printf("warm restore vs uninterrupted: %s "
                "(%zu-byte stat dump, %zu-byte live-point)\n",
                restore_identical ? "byte-identical" : "DIVERGED",
                full_dump.size(), live_point.size());

    // Sampled estimate: first run warms up and fills the live-point
    // cache; the second reuses it (the sweep-driver path).
    std::string cached;
    sample::SampledRun est = sample::runSampled(factory, wl, sp, &cached);
    bool live_point_stable = cached == live_point;
    sample::SampledRun again =
        sample::runSampled(factory, wl, sp, &cached);
    bool reuse_identical =
        est.mean == again.mean && est.windows == again.windows;

    std::printf("sampled: %.2f MFLOPS over %u window(s) "
                "(rel CI %.4f, detail speedup %.2fx)\n",
                est.mean, est.windows, est.rel_ci, est.speedup_factor);
    std::printf("agreement with full run: %.4f\n", est.mean / full_mean);
    std::printf("live-point stable: %s, warm reuse identical: %s\n",
                live_point_stable ? "yes" : "NO",
                reuse_identical ? "yes" : "NO");

    ctx.metric("n", n);
    ctx.metric("total_units", total_units);
    ctx.metric("windows", est.windows);
    ctx.metric("rel_ci", est.rel_ci);
    ctx.metric("speedup_factor", est.speedup_factor);
    ctx.metric("live_point_bytes",
               static_cast<double>(live_point.size()));
    ctx.cell("full_mflops", full_mean,
             {std::numeric_limits<double>::quiet_NaN(), 0.15, 1e-6,
              "full-detail mean unit rate (reference)"});
    ctx.cell("estimate_mflops", est.mean,
             {std::numeric_limits<double>::quiet_NaN(), 0.15, 1e-6,
              "live-point sampled estimate of the same workload"});
    ctx.cell("agreement", est.mean / full_mean,
             {1.0, 0.10, 1e-6,
              "sampled estimate over full-run mean"});
    ctx.cell("warm_restore_identical", restore_identical ? 1.0 : 0.0,
             {1.0, 0.0, 0.0,
              "restored run's stat dump is byte-identical to the "
              "uninterrupted run (host scalars erased)"});
    ctx.cell("live_point_stable", live_point_stable ? 1.0 : 0.0,
             {1.0, 0.0, 0.0,
              "sampler's saved live-point is byte-identical to a "
              "hand-saved checkpoint at the same boundary"});
    ctx.cell("reuse_identical", reuse_identical ? 1.0 : 0.0,
             {1.0, 0.0, 0.0,
              "re-running from the cached live-point reproduces the "
              "estimate (warm-checkpoint reuse)"});
}

} // namespace

namespace detail {

void
registerSampledRank64()
{
    registerScenario({"sampled_rank64",
                      "Sampled simulation - live-point agreement", true,
                      runSampledRank64});
}

} // namespace detail

} // namespace cedar::valid
