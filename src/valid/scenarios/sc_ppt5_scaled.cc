/**
 * @file
 * Scenario: PPT5 — scaled-up Cedar-like systems (2x and 4x cluster
 * counts with the bandwidth contract preserved). The paper only
 * announces this study, so every numeric cell is a drift tripwire;
 * the qualitative reading — the cache path keeps its efficiency
 * while prefetch saturates the shared memory — is frozen as exact
 * property cells.
 */

#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "core/cedar.hh"
#include "exec/parallel.hh"
#include "valid/scenario.hh"

namespace cedar::valid {

namespace {

machine::CedarConfig
scaledConfig(const ScenarioContext &ctx, unsigned clusters)
{
    machine::CedarConfig cfg;
    cfg.num_clusters = clusters;
    cfg.gm.num_ports = clusters * 8;
    cfg.gm.num_modules = clusters * 8;
    switch (clusters) {
      case 4: cfg.gm.stage_radices = {8, 4}; break;
      case 8: cfg.gm.stage_radices = {8, 8}; break;
      case 16: cfg.gm.stage_radices = {8, 4, 4}; break;
      default: fatal("no scaled shape for ", clusters, " clusters");
    }
    ctx.tune(cfg);
    return cfg;
}

void
runPpt5(ScenarioContext &ctx)
{
    std::printf("PPT5 study: scaled-up Cedar-like systems\n");
    std::printf("(same architecture, 2x and 4x cluster counts, "
                "bandwidth contract preserved)\n\n");

    const double nan = std::numeric_limits<double>::quiet_NaN();
    double eff_32 = 0.0, eff_128 = 0.0;
    core::TableWriter table({"CEs", "peak MFL", "RK/pref MFL",
                             "RK/cache MFL", "cache eff", "CG MFL",
                             "CG band"});

    // Nine independent runs (three scaled shapes x three kernels);
    // each task builds its own machine from its own config copy.
    const unsigned shapes[3] = {4u, 8u, 16u};
    auto rank64Task = [&ctx](unsigned clusters,
                             kernels::Rank64Version version) {
        return [&ctx, clusters,
                version](exec::RunContext &) -> double {
            auto cfg = scaledConfig(ctx, clusters);
            machine::CedarMachine machine(cfg);
            ctx.observe(machine,
                        "rank64 clusters=" + std::to_string(clusters));
            kernels::Rank64Params params;
            params.n = 512;
            params.clusters = clusters;
            params.version = version;
            return kernels::runRank64(machine, params).mflopsRate();
        };
    };
    std::vector<std::function<double(exec::RunContext &)>> tasks;
    for (unsigned clusters : shapes) {
        // Rank-64 with prefetch: stresses the shared global memory.
        tasks.push_back(
            rank64Task(clusters, kernels::Rank64Version::gm_prefetch));
        // Rank-64 from cache: the scalable path.
        tasks.push_back(
            rank64Task(clusters, kernels::Rank64Version::gm_cache));
    }
    // CG at a proportionally scaled problem.
    struct CgRun
    {
        double rate = 0.0, speedup = 0.0;
    };
    std::vector<std::function<CgRun(exec::RunContext &)>> cg_tasks;
    for (unsigned clusters : shapes) {
        cg_tasks.push_back([&ctx, clusters](exec::RunContext &) {
            auto cfg = scaledConfig(ctx, clusters);
            unsigned ces = cfg.numCes();
            machine::CedarMachine machine(cfg);
            ctx.observe(machine,
                        "cg clusters=" + std::to_string(clusters));
            kernels::CgTimedParams params;
            params.n = 2048 * ces;
            params.m = 128;
            params.ces = ces;
            params.iterations = 1;
            auto res = kernels::runCgTimed(machine, params);
            return CgRun{res.mflopsRate(),
                         res.flops / 2.3e6 / res.seconds()};
        });
    }
    auto rk_rates = exec::parallelMap<double>(ctx.jobs(), std::move(tasks));
    auto cg_runs =
        exec::parallelMap<CgRun>(ctx.jobs(), std::move(cg_tasks));

    for (int s = 0; s < 3; ++s) {
        const unsigned clusters = shapes[s];
        auto cfg = scaledConfig(ctx, clusters);
        unsigned ces = cfg.numCes();
        double pref_rate = rk_rates[std::size_t(s) * 2];
        double cache_rate = rk_rates[std::size_t(s) * 2 + 1];
        double cg_rate = cg_runs[s].rate;
        double cg_speedup = cg_runs[s].speedup;
        auto cg_band = method::classify(cg_speedup, ces);
        double cache_eff = cache_rate / cfg.effectivePeakMflops();
        if (clusters == 4)
            eff_32 = cache_eff;
        if (clusters == 16)
            eff_128 = cache_eff;
        table.row({core::fmt(ces, 0), core::fmt(cfg.peakMflops(), 0),
                   core::fmt(pref_rate, 0), core::fmt(cache_rate, 0),
                   core::fmt(cache_eff, 2), core::fmt(cg_rate, 0),
                   method::bandName(cg_band)});

        std::string key = std::to_string(ces) + "ce";
        ctx.cell(key + "_pref_mflops", pref_rate,
                 {nan, 0.0, 1e-6,
                  "rank-64/prefetch at " + key + " (drift tripwire)"});
        ctx.cell(key + "_cache_mflops", cache_rate,
                 {nan, 0.0, 1e-6,
                  "rank-64/cache at " + key + " (drift tripwire)"});
        ctx.cell(key + "_cache_eff", cache_eff,
                 {nan, 0.0, 1e-6,
                  "cache fraction of effective peak at " + key});
        ctx.cell(key + "_cg_mflops", cg_rate,
                 {nan, 0.0, 1e-6, "scaled CG rate at " + key});
        ctx.cell(key + "_cg_band_high",
                 std::strcmp(method::bandName(cg_band), "high") == 0
                     ? 1.0
                     : 0.0,
                 {clusters <= 8 ? 1.0 : 0.0, 0.0, 0.0,
                  "CG band at " + key +
                      " (high through 64 CEs, intermediate at 128)"});
    }
    table.print();

    std::printf(
        "\nreading: the cache path (cluster-resident blocking) scales "
        "with the machine because\nits global traffic per flop is "
        "tiny, while the prefetch path saturates the shared\nmemory "
        "system — the architecture reimplements cleanly only for "
        "computations with\nCedar-friendly locality, which is the "
        "honest PPT5 answer the paper anticipated.\n");

    ctx.cell("cache_eff_retained_4x", eff_128 / eff_32,
             {1.0, 0.12, 1e-6,
              "reading: cache-path efficiency holds at 4x scale"});
}

} // namespace

namespace detail {

void
registerPpt5Scaled()
{
    registerScenario({"ppt5_scaled",
                      "PPT5 - scaled Cedar-like systems", false,
                      runPpt5});
}

} // namespace detail

} // namespace cedar::valid
