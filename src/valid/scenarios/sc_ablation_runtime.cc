/**
 * @file
 * Scenario: Section 3.2 runtime-library costs measured on the
 * simulated machine — XDOALL startup and per-iteration fetch (the
 * paper's ~90 us and ~30 us), the Test-And-Set lock ablation, CDOALL
 * start, and the scheduling-policy comparison.
 */

#include <cstdio>
#include <deque>
#include <vector>

#include "core/cedar.hh"
#include "runtime/microbench.hh"
#include "valid/scenario.hh"

namespace cedar::valid {

namespace {

/** Time an XDOALL of n_iters trivial bodies over the given CEs. */
double
xdoallMicros(const ScenarioContext &ctx, unsigned ces, unsigned n_iters,
             bool cedar_sync)
{
    machine::CedarMachine machine(ctx.config());
    ctx.observe(machine, "xdoall ces=" + std::to_string(ces) +
                             " iters=" + std::to_string(n_iters) +
                             (cedar_sync ? " sync=cedar" : " sync=lock"));
    runtime::RuntimeParams params;
    params.use_cedar_sync = cedar_sync;
    runtime::LoopRunner runner(machine, params);
    std::vector<unsigned> ce_list;
    for (unsigned i = 0; i < ces; ++i)
        ce_list.push_back(i);
    Tick end = runner.xdoall(
        ce_list, n_iters,
        [](unsigned, unsigned, std::deque<cluster::Op> &out) {
            out.push_back(cluster::Op::makeScalar(10));
        });
    return ticksToMicros(end);
}

void
runAblationRuntime(ScenarioContext &ctx)
{
    std::printf("Runtime microbenchmarks (measured on the simulated "
                "machine)\n\n");

    // Startup: an XDOALL with one iteration per CE is dominated by the
    // global-memory gang start.
    double t32_1 = xdoallMicros(ctx, 32, 32, true);
    // Fetch: add ten iterations per CE; they execute serially on each
    // CE, so the wall-clock increment divided by ten is the per-CE
    // per-iteration fetch cost.
    double t32_11 = xdoallMicros(ctx, 32, 32 * 11, true);
    double fetch_per_iter = (t32_11 - t32_1) / 10.0;
    double t32_11_ns = xdoallMicros(ctx, 32, 32 * 11, false);
    double fetch_nosync =
        (t32_11_ns - xdoallMicros(ctx, 32, 32, false)) / 10.0;

    std::printf("XDOALL launch-to-join, 1 iteration per CE: %.0f us\n"
                "  (startup ~90 us + one iteration fetch + one "
                "exhaustion fetch; paper: ~90 us startup)\n",
                t32_1);
    std::printf("XDOALL per-iteration fetch: %.1f us with Cedar sync "
                "(paper: ~30 us), %.1f us with the lock protocol "
                "(%.1fx; iterations serialize on the lock)\n",
                fetch_per_iter, fetch_nosync,
                fetch_nosync / fetch_per_iter);

    // CDOALL start: concurrency-bus gang start plus bus dispatches.
    double cdoall_us;
    {
        machine::CedarMachine machine(ctx.config());
        ctx.observe(machine, "cdoall");
        runtime::LoopRunner runner(machine);
        Tick end = runner.cdoall(
            0, 8, [](unsigned, unsigned, std::deque<cluster::Op> &out) {
                out.push_back(cluster::Op::makeScalar(10));
            });
        cdoall_us = ticksToMicros(end);
        std::printf("CDOALL start+join for 8 trivial iterations: %.1f "
                    "us (paper: starts in a few us)\n",
                    cdoall_us);
    }

    std::printf("\nself-scheduling fetch throughput vs CE count "
                "(sync-cell contention):\n");
    core::TableWriter table({"CEs", "wall us/iter (sync)",
                             "wall us/iter (lock)", "lock penalty"});
    for (unsigned ces : {4u, 8u, 16u, 32u}) {
        unsigned iters = ces * 12;
        double base = xdoallMicros(ctx, ces, ces, true);
        double with = xdoallMicros(ctx, ces, iters, true);
        double per = (with - base) / (ces * 11.0);
        double base_l = xdoallMicros(ctx, ces, ces, false);
        double with_l = xdoallMicros(ctx, ces, iters, false);
        double per_l = (with_l - base_l) / (ces * 11.0);
        table.row({core::fmt(ces, 0), core::fmt(per), core::fmt(per_l),
                   core::fmt(per_l / per, 2) + "x"});
    }
    table.print();

    std::printf("\nmulticluster GM barrier cost vs CE count (the "
                "FLO52 overhead):\n");
    {
        core::TableWriter t({"CEs", "us per barrier episode"});
        for (unsigned ces : {2u, 8u, 16u, 32u}) {
            t.row({core::fmt(ces, 0),
                   core::fmt(runtime::measureGmBarrierMicros(ces))});
        }
        t.print();
    }

    std::printf("\nstatic vs self-scheduled XDOALL (320 x 100-cycle "
                "bodies, 32 CEs):\n");
    double sched_us[2] = {0.0, 0.0};
    for (auto sched : {runtime::Schedule::self_scheduled,
                       runtime::Schedule::static_chunked}) {
        machine::CedarMachine machine(ctx.config());
        ctx.observe(machine,
                    sched == runtime::Schedule::self_scheduled
                        ? "xdoall sched=self"
                        : "xdoall sched=static");
        runtime::LoopRunner runner(machine);
        Tick end = runner.xdoall(
            runner.allCes(), 320,
            [](unsigned, unsigned, std::deque<cluster::Op> &out) {
                out.push_back(cluster::Op::makeScalar(100));
            },
            sched);
        bool self = sched == runtime::Schedule::self_scheduled;
        std::printf("  %-15s %.0f us\n", self ? "self-scheduled" : "static",
                    ticksToMicros(end));
        sched_us[self ? 0 : 1] = ticksToMicros(end);
    }

    const double nan = std::numeric_limits<double>::quiet_NaN();
    ctx.cell("xdoall_startup_us", t32_1,
             {nan, 0.0, 1e-6,
              "launch-to-join incl. fetches; the configured startup "
              "component is ~90 us as the paper states"});
    ctx.cell("fetch_per_iter_us", fetch_per_iter,
             {30.0, 0.15, 1e-6,
              "Sec. 3.2: ~30 us self-scheduled iteration fetch"});
    ctx.cell("fetch_nosync_us", fetch_nosync,
             {nan, 0.0, 1e-6,
              "Test-And-Set lock protocol fetch (Table 3 no-sync "
              "ablation)"});
    ctx.cell("lock_penalty", fetch_nosync / fetch_per_iter,
             {nan, 0.0, 1e-6,
              "lock-protocol slowdown; iterations serialize on the "
              "lock"});
    ctx.cell("cdoall_start_us", cdoall_us,
             {nan, 0.0, 1e-6, "CDOALL start+join, 8 trivial iterations"});
    ctx.cell("cdoall_few_us", cdoall_us < 10.0 ? 1.0 : 0.0,
             {1.0, 0.0, 0.0,
              "Sec. 3.2: CDOALL starts in a few microseconds"});
    ctx.cell("xdoall_self_us", sched_us[0],
             {nan, 0.0, 1e-6, "self-scheduled 320x100-cycle XDOALL"});
    ctx.cell("xdoall_static_us", sched_us[1],
             {nan, 0.0, 1e-6, "static-chunked 320x100-cycle XDOALL"});
}

} // namespace

namespace detail {

void
registerAblationRuntime()
{
    registerScenario({"ablation_runtime",
                      "Section 3.2 - runtime cost microbenchmarks", true,
                      runAblationRuntime});
}

} // namespace detail

} // namespace cedar::valid
