/**
 * @file
 * Scenario: Section 4.3 PPT4 — CG scalability on Cedar against the
 * CM-5 banded matrix-vector model. Paper findings frozen as cells:
 * the 32-CE MFLOPS range inside the paper's 34..48 band, the high
 * band reached between 10K and 16K, the CM-5 28-32 / 58-67 ranges,
 * and roughly equivalent per-processor rates.
 */

#include <algorithm>
#include <cstdio>
#include <functional>
#include <vector>

#include "core/cedar.hh"
#include "exec/parallel.hh"
#include "valid/scenario.hh"

namespace cedar::valid {

namespace {

double
cgSerialEstimateSeconds(unsigned n, unsigned iterations)
{
    // Best uniprocessor baseline: a vectorized one-CE CG is bound by
    // its global-memory streams at ~2.56 cycles per flop (~2.3
    // MFLOPS); speedups for algorithm studies are quoted against the
    // best serial version, not the scalar one.
    double cycles = 19.0 * n * iterations * 2.56;
    return ticksToSeconds(static_cast<Tick>(cycles));
}

void
runPpt4(ScenarioContext &ctx)
{
    std::printf("PPT4 study: CG scalability on Cedar vs CM-5 banded "
                "matvec\n\n");

    const unsigned sizes[] = {1024, 4096, 10240, 16384, 32768, 65536,
                              98304, 172032};
    const unsigned procs[] = {2, 4, 8, 16, 32};

    core::TableWriter table({"N", "P", "MFLOPS", "speedup", "band"});
    std::vector<method::ScalePoint> points;
    double mflops_min_32 = 1e9, mflops_max_32 = 0.0;

    // Enumerate the admissible (N, P) grid first, run the points as
    // independent tasks, then reduce in grid order so the table,
    // ScalePoint list, and min/max never depend on completion order.
    struct CgPoint
    {
        unsigned n, p;
    };
    struct CgRun
    {
        double rate = 0.0, seconds = 0.0;
    };
    std::vector<CgPoint> grid;
    for (unsigned n : sizes)
        for (unsigned p : procs)
            if (n % (p * 32) == 0)
                grid.push_back({n, p});

    std::vector<std::function<CgRun(exec::RunContext &)>> tasks;
    tasks.reserve(grid.size());
    for (const CgPoint pt : grid) {
        tasks.push_back([&ctx, pt](exec::RunContext &) {
            machine::CedarMachine machine(ctx.config());
            ctx.observe(machine, "cg n=" + std::to_string(pt.n) +
                                     " p=" + std::to_string(pt.p));
            kernels::CgTimedParams params;
            params.n = pt.n;
            params.m = 128;
            params.ces = pt.p;
            params.iterations = 2;
            auto res = kernels::runCgTimed(machine, params);
            return CgRun{res.mflopsRate(), res.seconds()};
        });
    }
    auto runs = exec::parallelMap<CgRun>(ctx.jobs(), std::move(tasks));

    for (std::size_t i = 0; i < grid.size(); ++i) {
        const unsigned n = grid[i].n, p = grid[i].p;
        double rate = runs[i].rate;
        double serial = cgSerialEstimateSeconds(n, 2);
        double spd = serial / runs[i].seconds;
        points.push_back(method::ScalePoint{p, double(n), spd});
        if (p == 32 && n >= 10240) {
            // The paper quotes the 32-CE rate range for 10K..172K.
            mflops_min_32 = std::min(mflops_min_32, rate);
            mflops_max_32 = std::max(mflops_max_32, rate);
        }
        table.row({core::fmt(n, 0), core::fmt(p, 0), core::fmt(rate),
                   core::fmt(spd),
                   method::bandName(method::classify(spd, p))});
    }
    table.print();

    auto ppt4 = method::evaluatePpt4(points);
    std::printf("\nCedar 32-CE MFLOPS range: %.0f..%.0f (paper: 34..48 "
                "for 10K..172K)\n",
                mflops_min_32, mflops_max_32);
    std::printf("high band reached at N >= %.0f on 32 CEs (paper: "
                "between 10K and 16K)\n",
                ppt4.high_band_threshold_n);
    std::printf("scalable: %s, scalable high: %s  (St high regime "
                "%.2f, intermediate regime %.2f)\n\n",
                ppt4.scalable ? "yes" : "no",
                ppt4.scalable_high ? "yes" : "no", ppt4.high_stability,
                ppt4.intermediate_stability);

    std::printf("CM-5 banded matrix-vector (no FP accelerators, "
                "[FWPS92] model):\n");
    method::Cm5Model cm5;
    double cm5_bw3_min = 1e9, cm5_bw3_max = 0.0;
    double cm5_bw11_min = 1e9, cm5_bw11_max = 0.0;
    core::TableWriter cm5_table(
        {"BW", "N", "32-node MFLOPS", "band@32", "band@256", "band@512"});
    for (unsigned bw : {3u, 11u}) {
        for (double n : {16384.0, 65536.0, 262144.0}) {
            double rate = cm5.mflops(bw, n, 32);
            if (bw == 3) {
                cm5_bw3_min = std::min(cm5_bw3_min, rate);
                cm5_bw3_max = std::max(cm5_bw3_max, rate);
            } else {
                cm5_bw11_min = std::min(cm5_bw11_min, rate);
                cm5_bw11_max = std::max(cm5_bw11_max, rate);
            }
            cm5_table.row(
                {core::fmt(bw, 0), core::fmt(n, 0), core::fmt(rate),
                 method::bandName(cm5.band(bw, n, 32)),
                 method::bandName(cm5.band(bw, n, 256)),
                 method::bandName(cm5.band(bw, n, 512))});
        }
    }
    cm5_table.print();
    std::printf("(paper: 28-32 MFLOPS BW=3, 58-67 MFLOPS BW=11 at 32 "
                "nodes; scalable intermediate, never high)\n");

    // Extension: the like-for-like comparison the paper implies but
    // never ran — the same banded matvec on Cedar's 32 CEs.
    std::printf("\nCedar banded matrix-vector (extension, same "
                "computation as the CM-5 rows):\n");
    core::TableWriter banded_table({"BW", "N", "32-CE MFLOPS"});
    std::vector<std::function<double(exec::RunContext &)>> banded_tasks;
    for (unsigned bw : {3u, 11u}) {
        for (unsigned n : {16384u, 65536u, 262144u}) {
            banded_tasks.push_back([&ctx, bw, n](exec::RunContext &) {
                machine::CedarMachine machine(ctx.config());
                ctx.observe(machine, "banded bw=" + std::to_string(bw) +
                                         " n=" + std::to_string(n));
                kernels::BandedParams bparams;
                bparams.n = n;
                bparams.bandwidth = bw;
                bparams.ces = 32;
                return kernels::runBanded(machine, bparams).mflopsRate();
            });
        }
    }
    auto banded_rates =
        exec::parallelMap<double>(ctx.jobs(), std::move(banded_tasks));
    {
        std::size_t i = 0;
        for (unsigned bw : {3u, 11u}) {
            for (unsigned n : {16384u, 65536u, 262144u}) {
                banded_table.row({core::fmt(bw, 0), core::fmt(n, 0),
                                  core::fmt(banded_rates[i++])});
            }
        }
    }
    banded_table.print();

    double cedar_per_proc = (mflops_min_32 + mflops_max_32) / 2.0 / 32.0;
    double cm5_per_proc =
        (cm5.mflops(3, 65536, 32) + cm5.mflops(11, 65536, 32)) / 2.0 /
        32.0;
    std::printf("\nper-processor MFLOPS: Cedar %.2f, CM-5 %.2f (paper: "
                "roughly equivalent)\n",
                cedar_per_proc, cm5_per_proc);

    const double nan = std::numeric_limits<double>::quiet_NaN();
    ctx.cell("mflops_min_32", mflops_min_32,
             {34.0, 0.15, 1e-6,
              "Sec. 4.3: Cedar 32-CE lower rate, 34..48 band"});
    ctx.cell("mflops_max_32", mflops_max_32,
             {48.0, 0.15, 1e-6,
              "Sec. 4.3: Cedar 32-CE upper rate, 34..48 band"});
    ctx.cell("high_band_threshold_n", ppt4.high_band_threshold_n,
             {nan, 0.0, 1e-6,
              "high band reached between 10K and 16K on 32 CEs"});
    ctx.cell("high_threshold_in_band",
             (ppt4.high_band_threshold_n >= 10240.0 &&
              ppt4.high_band_threshold_n <= 16384.0)
                 ? 1.0
                 : 0.0,
             {1.0, 0.0, 0.0,
              "stated: the high threshold sits between 10K and 16K"});
    ctx.cell("scalable", ppt4.scalable ? 1.0 : 0.0,
             {1.0, 0.0, 0.0, "stated: CG on Cedar is scalable"});
    ctx.cell("scalable_high", ppt4.scalable_high ? 1.0 : 0.0,
             {1.0, 0.0, 0.0,
              "stated: scalable high performance above the threshold"});
    ctx.cell("high_stability", ppt4.high_stability,
             {nan, 0.0, 1e-6, "St over the high regime"});
    ctx.cell("intermediate_stability", ppt4.intermediate_stability,
             {nan, 0.0, 1e-6, "St over the intermediate regime"});
    ctx.cell("cm5_bw3_min_mflops", cm5_bw3_min,
             {28.0, 0.08, 1e-6, "[FWPS92]: 28-32 MFLOPS at BW=3"});
    ctx.cell("cm5_bw3_max_mflops", cm5_bw3_max,
             {32.0, 0.08, 1e-6, "[FWPS92]: 28-32 MFLOPS at BW=3"});
    ctx.cell("cm5_bw11_min_mflops", cm5_bw11_min,
             {58.0, 0.08, 1e-6, "[FWPS92]: 58-67 MFLOPS at BW=11"});
    ctx.cell("cm5_bw11_max_mflops", cm5_bw11_max,
             {67.0, 0.08, 1e-6, "[FWPS92]: 58-67 MFLOPS at BW=11"});
    ctx.cell("cedar_per_proc_mflops", cedar_per_proc,
             {nan, 0.0, 1e-6, "Cedar mean per-processor rate"});
    ctx.cell("cm5_per_proc_mflops", cm5_per_proc,
             {nan, 0.0, 1e-6, "CM-5 mean per-processor rate"});
    ctx.cell("per_proc_ratio", cedar_per_proc / cm5_per_proc,
             {1.0, 0.35, 1e-6,
              "stated: per-processor rates roughly equivalent"});
}

} // namespace

namespace detail {

void
registerPpt4Scalability()
{
    registerScenario({"ppt4_scalability",
                      "Section 4.3 - PPT4 CG scalability vs CM-5", false,
                      runPpt4});
}

} // namespace detail

} // namespace cedar::valid
