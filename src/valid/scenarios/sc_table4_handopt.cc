/**
 * @file
 * Scenario: Table 4 — manually altered Perfect codes: execution
 * times, improvement over the automatable/no-sync baseline, and the
 * in-text QCD hand-coded RNG result (20.8 vs 1.8).
 */

#include <cctype>
#include <cstdio>
#include <string>

#include "core/cedar.hh"
#include "valid/scenario.hh"

namespace cedar::valid {

namespace {

struct PaperRow
{
    const char *code;
    double time_s;
    double improvement; // 0 = not printed in Table 4
};

const PaperRow paper_rows[] = {
    {"ARC2D", 68.0, 2.1}, // printed as ARC3D/ARCSD in the scan
    {"BDNA", 70.0, 1.7},
    {"FLO52", 33.0, 0.0},
    {"DYFESM", 31.0, 0.0},
    {"TRFD", 7.5, 2.8},
    {"QCD", 21.0, 11.4},
    {"SPICE", 26.0, 0.0},
    {"TRACK", 11.0, 0.0},
};

void
runTable4(ScenarioContext &ctx)
{
    perfect::PerfectModel model;
    auto hand = model.evaluateSuite(perfect::Level::hand);
    auto nosync = model.evaluateSuite(perfect::Level::automatable_nosync);
    auto serial = model.evaluateSuite(perfect::Level::serial);

    std::printf("Table 4: Execution times (s) for manually altered "
                "Perfect codes and improvement\n"
                "over automatable w/ prefetch and w/o Cedar "
                "synchronization\n\n");

    core::TableWriter table({"code", "time s (paper)", "improvement "
                             "(paper)", "hand speedup"});
    for (const auto &row : paper_rows) {
        std::size_t idx = 0;
        for (std::size_t i = 0; i < hand.size(); ++i)
            if (hand[i].code == row.code)
                idx = i;
        double impr = nosync[idx].seconds / hand[idx].seconds;
        double spd = serial[idx].seconds / hand[idx].seconds;
        std::string impr_cell =
            row.improvement > 0.0 ? core::vsPaper(impr, row.improvement)
                                  : core::fmt(impr);
        table.row({row.code, core::vsPaper(hand[idx].seconds, row.time_s, 0),
                   impr_cell, core::fmt(spd)});

        std::string lc = row.code;
        for (auto &c : lc)
            c = char(std::tolower(static_cast<unsigned char>(c)));
        ctx.cell(lc + "_hand_seconds", hand[idx].seconds,
                 {row.time_s, 0.08, 1e-6,
                  std::string("Table 4: ") + row.code +
                      " hand-optimized time (s)"});
        if (row.improvement > 0.0) {
            ctx.cell(lc + "_improvement", impr,
                     {row.improvement, 0.08, 1e-6,
                      std::string("Table 4: ") + row.code +
                          " improvement over automatable/no-sync"});
        }
    }
    table.print();

    // In-text: "If a hand-coded parallel random number generator is
    // used, QCD can be improved to yield a speed improvement of 20.8
    // rather than the 1.8 reported for the automatable code."
    std::size_t qcd = 0;
    for (std::size_t i = 0; i < hand.size(); ++i)
        if (hand[i].code == "QCD")
            qcd = i;
    double qcd_hand_spd = serial[qcd].seconds / hand[qcd].seconds;
    double qcd_auto_spd = model.evaluate(perfect::perfectCode("QCD"),
                                         perfect::Level::automatable)
                              .speedup;
    std::printf("\nQCD speed improvement over serial: hand %.1f "
                "(paper 20.8), automatable %.1f (paper 1.8)\n",
                qcd_hand_spd, qcd_auto_spd);

    ctx.cell("qcd_hand_speedup", qcd_hand_spd,
             {20.8, 0.05, 1e-6,
              "in-text: 20.8 with a hand-coded parallel RNG"});
    ctx.cell("qcd_auto_speedup", qcd_auto_spd,
             {1.8, 0.05, 1e-6, "Table 3: 1.8 for the automatable code"});
}

} // namespace

namespace detail {

void
registerTable4Handopt()
{
    registerScenario({"table4_handopt",
                      "Table 4 - manually altered Perfect codes", true,
                      runTable4});
}

} // namespace detail

} // namespace cedar::valid
