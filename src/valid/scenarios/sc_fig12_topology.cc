/**
 * @file
 * Scenario: Figures 1 & 2 — the machine organization self-check.
 * Every number the paper states about the Cedar organization is
 * recomputed from the built system and frozen as a golden cell; the
 * paper bands are tight because these are configuration identities,
 * not simulation outcomes.
 */

#include <cstdio>

#include "core/cedar.hh"
#include "valid/scenario.hh"

namespace cedar::valid {

namespace {

void
runFig12(ScenarioContext &ctx)
{
    machine::CedarMachine machine(ctx.config());
    ctx.observe(machine, "topology");
    const auto &cfg = machine.config();

    std::printf("Figures 1 & 2: the Cedar organization "
                "(recomputed from the built system)\n\n");
    core::TableWriter table({"property", "built", "paper"});

    table.row({"clusters", core::fmt(machine.numClusters(), 0), "4"});
    table.row({"CEs per cluster", core::fmt(cfg.cluster.num_ces, 0), "8"});
    table.row({"CE cycle (ns)", core::fmt(ce_cycle_ns, 0), "170"});
    table.row({"CE peak MFLOPS", core::fmt(2.0 * ce_clock_mhz), "11.8"});
    table.row({"machine peak MFLOPS", core::fmt(cfg.peakMflops(), 0),
               "376"});
    table.row({"effective peak MFLOPS",
               core::fmt(cfg.effectivePeakMflops(), 0), "274"});

    // Cache: 8 words/cycle/cluster = 48 MB/s per CE, 384 MB/s/cluster.
    double cache_mb_s = cfg.cluster.cache.words_per_cycle *
                        bytes_per_word / (ce_cycle_ns * 1e-9) / 1e6;
    table.row({"cache bandwidth MB/s/cluster", core::fmt(cache_mb_s, 0),
               "384"});
    double cmem_mb_s = cfg.cluster.cmem.words_per_cycle *
                       bytes_per_word / (ce_cycle_ns * 1e-9) / 1e6;
    table.row({"cluster memory MB/s", core::fmt(cmem_mb_s, 0), "192"});
    table.row({"cache line bytes",
               core::fmt(cfg.cluster.cache.line_bytes, 0), "32"});
    table.row({"cache capacity KB",
               core::fmt(cfg.cluster.cache.capacity_kb, 0), "512"});

    // Network/global memory: per-CE share 24 MB/s, system 768 MB/s.
    double per_ce_mb_s = bytes_per_word /
                         (cfg.cluster.pfu.issue_interval * ce_cycle_ns *
                          1e-9) /
                         1e6;
    table.row({"global BW per CE MB/s", core::fmt(per_ce_mb_s, 0), "24"});
    double sys_words_per_cycle =
        double(cfg.gm.num_modules) / cfg.gm.module_access_cycles;
    double sys_mb_s = sys_words_per_cycle * bytes_per_word /
                      (ce_cycle_ns * 1e-9) / 1e6;
    table.row({"global memory BW MB/s", core::fmt(sys_mb_s, 0), "768"});
    table.row({"memory modules", core::fmt(cfg.gm.num_modules, 0),
               "double-word interleaved"});

    auto &gm = machine.gm();
    double min_pfu_latency =
        gm.minReadLatency() + cfg.cluster.pfu.buffer_fill;
    double ce_visible = cfg.cluster.ce.issue_cycles +
                        gm.minReadLatency() + cfg.cluster.ce.drain_cycles;
    table.row({"network stages",
               core::fmt(gm.forwardNet().numStages(), 0), "2 (8x8 xbars)"});
    table.row({"min PFU latency (cycles)", core::fmt(min_pfu_latency, 0),
               "8"});
    table.row({"CE-visible latency (cycles)", core::fmt(ce_visible, 0),
               "13"});
    table.row({"outstanding misses per CE",
               core::fmt(cfg.cluster.cache.misses_per_ce, 0), "2"});
    table.row({"prefetch buffer words",
               core::fmt(cfg.cluster.pfu.buffer_words, 0), "512"});
    table.row({"page size (words)", core::fmt(mem::words_per_page, 0),
               "512 (4KB)"});
    table.print();

    // Routing self-check: the tag scheme gives a unique path from every
    // input to every output on both networks.
    unsigned ports = gm.forwardNet().numPorts();
    std::uint64_t paths = 0;
    for (unsigned in = 0; in < ports; ++in)
        for (unsigned out = 0; out < ports; ++out)
            paths += gm.forwardNet().path(in, out).size();
    std::printf("\nrouting self-check: %u x %u port pairs, %llu hops "
                "walked, all unique-path assertions held\n",
                ports, ports, static_cast<unsigned long long>(paths));

    ctx.cell("clusters", machine.numClusters(),
             {4.0, 0.0, 0.0, "Fig. 1: four Alliant FX/8 clusters"});
    ctx.cell("ces", machine.numCes(),
             {32.0, 0.0, 0.0, "Fig. 1: 8 CEs per cluster, 32 total"});
    ctx.cell("peak_mflops", cfg.peakMflops(),
             {376.0, 0.01, 1e-9, "Sec. 2: 376 MFLOPS machine peak"});
    ctx.cell("effective_peak_mflops", cfg.effectivePeakMflops(),
             {274.0, 0.01, 1e-9,
              "Sec. 4.1: 274 MFLOPS effective peak on 32-word strips"});
    ctx.cell("cache_bw_mb_s_cluster", cache_mb_s,
             {384.0, 0.03, 1e-9,
              "Fig. 2 cache bandwidth; 2-3% integer-cycle rounding"});
    ctx.cell("cluster_mem_bw_mb_s", cmem_mb_s,
             {192.0, 0.03, 1e-9,
              "Fig. 2 cluster memory bandwidth; rounding delta"});
    ctx.cell("global_bw_per_ce_mb_s", per_ce_mb_s,
             {24.0, 0.02, 1e-9, "Sec. 2: 24 MB/s global share per CE"});
    ctx.cell("global_bw_mb_s", sys_mb_s,
             {768.0, 0.03, 1e-9,
              "Sec. 2: 768 MB/s total global bandwidth; rounding"});
    ctx.cell("min_pfu_latency_cycles", min_pfu_latency,
             {8.0, 0.0, 0.0, "Table 2 note: 8-cycle minimum latency"});
    ctx.cell("ce_visible_latency_cycles", ce_visible,
             {13.0, 0.0, 0.0, "Sec. 2: 13-cycle CE-visible latency"});
    ctx.cell("prefetch_buffer_words", cfg.cluster.pfu.buffer_words,
             {512.0, 0.0, 0.0, "Sec. 2: 512-word prefetch buffer"});
    ctx.cell("page_words", mem::words_per_page,
             {512.0, 0.0, 0.0, "Sec. 4.2: 4 KB (512-word) pages"});
    ctx.cell("route_hops_walked", static_cast<double>(paths),
             {std::numeric_limits<double>::quiet_NaN(), 0.15, 0.0,
              "unique-path walk over every port pair, both networks"});
}

} // namespace

namespace detail {

void
registerFig12Topology()
{
    registerScenario({"fig12_topology",
                      "Figures 1-2 - machine organization", true,
                      runFig12});
}

} // namespace detail

} // namespace cedar::valid
