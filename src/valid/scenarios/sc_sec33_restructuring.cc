/**
 * @file
 * Scenario: Section 3.3 — the automatable-transformation matrix and
 * the leave-one-out sensitivity study. Array privatization is the
 * load-bearing transformation (largest suite harmonic-mean loss when
 * disabled), matching Section 3.2's loop-local placement discussion.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "core/cedar.hh"
#include "perfect/restructure.hh"
#include "valid/scenario.hh"

namespace cedar::valid {

namespace {

void
runSec33(ScenarioContext &ctx)
{
    using perfect::Transformation;
    perfect::PerfectModel model;

    const Transformation all[] = {
        Transformation::array_privatization,
        Transformation::parallel_reductions,
        Transformation::induction_substitution,
        Transformation::runtime_dep_tests,
        Transformation::balanced_stripmining,
        Transformation::save_return_parallelization,
    };
    const char *abbrev[] = {"priv", "redux", "induc",
                            "rtdep", "strip", "sv/rt"};

    std::printf("Section 3.3: automatable transformations per Perfect "
                "code\n\n");
    {
        std::vector<std::string> headers{"code", "KAP spd", "auto spd"};
        for (const char *a : abbrev)
            headers.push_back(a);
        core::TableWriter table(std::move(headers));
        for (const auto &code : perfect::perfectSuite()) {
            std::vector<std::string> row{
                code.name,
                core::fmt(model.evaluate(code, perfect::Level::kap)
                              .speedup),
                core::fmt(
                    model.evaluate(code, perfect::Level::automatable)
                        .speedup)};
            for (Transformation t : all) {
                double w = 0.0;
                for (const auto &use :
                     perfect::transformationsFor(code.name)) {
                    if (use.transformation == t)
                        w = use.weight;
                }
                row.push_back(w > 0.0 ? core::fmt(w, 1) : "-");
            }
            table.row(row);
        }
        table.print();
    }
    std::printf("(cells: share of the code's KAP-to-automatable gap "
                "carried by the transformation)\n\n");

    std::printf("leave-one-out: suite harmonic-mean speedup with one "
                "transformation disabled\n");
    double base = 0.0;
    {
        std::vector<double> speedups;
        for (const auto &code : perfect::perfectSuite()) {
            speedups.push_back(
                model.evaluate(code, perfect::Level::automatable)
                    .speedup);
        }
        base = harmonicMean(speedups);
    }
    core::TableWriter table({"disabled transformation", "suite HM spd",
                             "loss", "needs advanced analysis"});
    table.row({"(none)", core::fmt(base, 2), "-", "-"});
    double worst_loss = 0.0, second_loss = 0.0;
    std::string worst_name;
    for (unsigned i = 0; i < perfect::num_transformations; ++i) {
        Transformation t = all[i];
        double without = perfect::suiteSpeedupWithout(model, t);
        double loss = 100.0 * (1.0 - without / base);
        if (loss > worst_loss) {
            second_loss = worst_loss;
            worst_loss = loss;
            worst_name = perfect::transformationName(t);
        } else if (loss > second_loss) {
            second_loss = loss;
        }
        table.row({perfect::transformationName(t), core::fmt(without, 2),
                   core::fmt(loss, 0) + "%",
                   perfect::requiresAdvancedAnalysis(t) ? "yes" : "no"});
    }
    table.print();
    std::printf("\n(array privatization is the load-bearing "
                "transformation, as Section 3.2's\n"
                "loop-local placement discussion predicts — and it is "
                "one of the analyses that\n"
                "needs the advanced symbolic/interprocedural machinery "
                "the paper flags.)\n");

    const double nan = std::numeric_limits<double>::quiet_NaN();
    ctx.cell("suite_hm_speedup", base,
             {nan, 0.0, 1e-6,
              "suite harmonic-mean automatable speedup"});
    ctx.cell("worst_loss_pct", worst_loss,
             {25.0, 0.2, 1e-6,
              "leave-one-out: privatization costs ~25% of the suite "
              "harmonic mean"});
    ctx.cell("second_loss_pct", second_loss,
             {9.0, 0.35, 1e-6,
              "next-largest leave-one-out loss (~9%)"});
    ctx.cell("worst_is_privatization",
             worst_name == "array privatization" ? 1.0 : 0.0,
             {1.0, 0.0, 0.0,
              "stated: privatization is the load-bearing "
              "transformation"});
    ctx.note("worst_transformation", worst_name);
}

} // namespace

namespace detail {

void
registerSec33Restructuring()
{
    registerScenario({"sec33_restructuring",
                      "Section 3.3 - transformation sensitivity", true,
                      runSec33});
}

} // namespace detail

} // namespace cedar::valid
