/**
 * @file
 * Scenario: Table 3 — Perfect Benchmarks on Cedar via the calibrated
 * workload model: automatable speed improvements, the sync/prefetch
 * ablation columns, and the YMP/Cedar harmonic-mean ratio. The
 * machine costs grounding the model come from runtime microbenchmarks
 * run on the simulator, so an engine or runtime regression moves
 * these cells.
 */

#include <cstdio>

#include "core/cedar.hh"
#include "runtime/microbench.hh"
#include "valid/scenario.hh"

namespace cedar::valid {

namespace {

void
runTable3(ScenarioContext &ctx)
{
    // Ground the workload model in costs measured on the simulator.
    auto costs = runtime::measuredMachineCosts();
    std::printf("machine costs measured on the simulator: fetch %.1f "
                "us, lock fetch %.1f us,\nbarrier %.1f us "
                "(32 CEs)\n\n",
                costs.iter_fetch_us, costs.iter_fetch_nosync_us,
                costs.barrier_us);
    perfect::PerfectModel model(costs);
    const auto &ymp = method::ympRef();

    auto serial = model.evaluateSuite(perfect::Level::serial);
    auto kap = model.evaluateSuite(perfect::Level::kap);
    auto autov = model.evaluateSuite(perfect::Level::automatable);
    auto nosync = model.evaluateSuite(perfect::Level::automatable_nosync);
    auto nopref = model.evaluateSuite(perfect::Level::automatable_nopref);

    std::printf("Table 3: Cedar execution time, MFLOPS, and speed "
                "improvement for Perfect Benchmarks\n\n");
    core::TableWriter table({"code", "serial s", "KAP spd", "auto s",
                             "auto MFL", "auto spd", "-sync spd",
                             "-pref spd", "YMP/Cedar"});
    std::vector<double> cedar_rates;
    for (std::size_t i = 0; i < autov.size(); ++i) {
        double ratio = ymp.codes[i].auto_mflops / autov[i].mflops;
        cedar_rates.push_back(autov[i].mflops);
        table.row({autov[i].code, core::fmt(serial[i].seconds, 0),
                   core::fmt(kap[i].speedup), core::fmt(autov[i].seconds, 0),
                   core::fmt(autov[i].mflops, 2),
                   core::fmt(autov[i].speedup),
                   core::fmt(nosync[i].speedup),
                   core::fmt(nopref[i].speedup), core::fmt(ratio)});
    }
    table.print();

    double cedar_hm = harmonicMean(cedar_rates);
    double ymp_hm = harmonicMean(ymp.autoRates());
    std::printf("\nharmonic mean MFLOPS: Cedar %.2f, YMP/8 %.2f  "
                "(YMP/Cedar ratio %.1f; paper states 7.4)\n",
                cedar_hm, ymp_hm, ymp_hm / cedar_hm);
    std::printf("clock ratio for reference: 170ns/6ns = %.2f\n",
                170.0 / 6.0);

    std::printf("\nstated per-code properties:\n");
    auto findIdx = [&](const char *name) {
        for (std::size_t i = 0; i < autov.size(); ++i)
            if (autov[i].code == name)
                return i;
        return std::size_t(0);
    };
    std::size_t dyf = findIdx("DYFESM"), oce = findIdx("OCEAN"),
                trk = findIdx("TRACK"), qcd = findIdx("QCD");
    double dyf_nosync_pct =
        100.0 * (nosync[dyf].seconds / autov[dyf].seconds - 1.0);
    double oce_nosync_pct =
        100.0 * (nosync[oce].seconds / autov[oce].seconds - 1.0);
    double dyf_nopref_pct =
        100.0 * (nopref[dyf].seconds / nosync[dyf].seconds - 1.0);
    double trk_nopref_pct =
        100.0 * (nopref[trk].seconds / nosync[trk].seconds - 1.0);
    std::printf("  QCD automatable improvement: %.1f (paper: 1.8)\n",
                autov[qcd].speedup);
    std::printf("  fine-grained codes slow down without Cedar sync: "
                "DYFESM %.0f%%, OCEAN %.0f%%\n",
                dyf_nosync_pct, oce_nosync_pct);
    std::printf("  DYFESM benefits significantly from prefetch: "
                "+%.0f%% time without it\n",
                dyf_nopref_pct);
    std::printf("  TRACK (scalar-access dominated) barely reacts: "
                "+%.0f%% without prefetch\n",
                trk_nopref_pct);

    const double nan = std::numeric_limits<double>::quiet_NaN();
    ctx.cell("iter_fetch_us", costs.iter_fetch_us,
             {30.0, 0.15, 1e-6,
              "Sec. 3.3: ~30 us self-scheduled iteration fetch, "
              "measured on the simulator"});
    ctx.cell("barrier_us", costs.barrier_us,
             {nan, 0.0, 1e-6, "32-CE barrier cost grounding the model"});
    ctx.cell("cedar_hm_mflops", cedar_hm,
             {nan, 0.0, 1e-6,
              "harmonic-mean automatable MFLOPS across the suite"});
    ctx.cell("ymp_hm_mflops", ymp_hm,
             {13.0, 0.05, 1e-6,
              "YMP/8 harmonic mean from the calibrated reference"});
    ctx.cell("ymp_cedar_ratio", ymp_hm / cedar_hm,
             {7.4, 0.06, 1e-6,
              "in-text: YMP/Cedar harmonic-mean ratio 7.4 (we get "
              "~7.6)"});
    ctx.cell("qcd_auto_speedup", autov[qcd].speedup,
             {1.8, 0.05, 1e-6,
              "Table 3: QCD speed improvement 1.8 (serial RNG "
              "bottleneck)"});
    ctx.cell("dyfesm_nosync_slowdown_pct", dyf_nosync_pct,
             {nan, 0.0, 1e-6,
              "in-text (qualitative): DYFESM slows markedly without "
              "Cedar sync"});
    ctx.cell("ocean_nosync_slowdown_pct", oce_nosync_pct,
             {nan, 0.0, 1e-6,
              "in-text (qualitative): OCEAN slows without Cedar sync"});
    ctx.cell("fine_grained_slowdown_order",
             (dyf_nosync_pct > oce_nosync_pct && oce_nosync_pct > 5.0)
                 ? 1.0
                 : 0.0,
             {1.0, 0.0, 0.0,
              "stated: the fine-grained codes (DYFESM worst, then "
              "OCEAN) slow down without Cedar sync"});
    ctx.cell("dyfesm_nopref_slowdown_pct", dyf_nopref_pct,
             {nan, 0.0, 1e-6,
              "in-text (qualitative): DYFESM benefits significantly "
              "from prefetch"});
    ctx.cell("prefetch_sensitivity_order",
             (dyf_nopref_pct > 10.0 && trk_nopref_pct < 5.0) ? 1.0 : 0.0,
             {1.0, 0.0, 0.0,
              "stated: DYFESM needs prefetch, scalar-bound TRACK "
              "barely reacts"});
    ctx.cell("track_nopref_slowdown_pct", trk_nopref_pct,
             {nan, 0.0, 1e-6,
              "in-text (qualitative): TRACK barely reacts to prefetch "
              "removal"});
}

} // namespace

namespace detail {

void
registerTable3Perfect()
{
    registerScenario({"table3_perfect",
                      "Table 3 - Perfect Benchmarks on Cedar", true,
                      runTable3});
}

} // namespace detail

} // namespace cedar::valid
