/**
 * @file
 * Scenario: 256 clusters — 32x the machine the paper built. A
 * 2048-port system of every fabric family completes uniform and
 * hot-spot traffic under the liveness watchdog; the latency cells are
 * drift tripwires (the paper has no numbers out here) and the
 * completion/conservation facts are exact property cells. This is the
 * scale ceiling of the golden battery: if a latent small-machine
 * assumption creeps back into the address map, the partition map, or
 * a topology's routing, this scenario is where it dies.
 */

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "core/cedar.hh"
#include "exec/parallel.hh"
#include "valid/scenario.hh"

namespace cedar::valid {

namespace {

struct FabricVariant
{
    const char *label;
    const char *topology;
    bool combined;
};

constexpr FabricVariant fabric_variants[] = {
    {"omega", "omega", false},
    {"fattree", "fattree", false},
    {"crossbar", "crossbar", false},
    {"combined", "omega", true},
};

constexpr unsigned scale_clusters = 256;
constexpr unsigned scale_ports = scale_clusters * 8;
constexpr unsigned rounds = 6;

struct TrafficPoint
{
    double mean_latency = 0.0;
    double max_latency = 0.0;
    double floor = 0.0;
    unsigned packets = 0;
    unsigned delivered = 0;
    Tick makespan = 0;
};

TrafficPoint
runPoint(const ScenarioContext &ctx, const FabricVariant &fabric,
         net::TrafficPattern pattern)
{
    auto cfg = machine::CedarConfig::scaled(scale_clusters,
                                            fabric.topology,
                                            fabric.combined);
    ctx.tune(cfg);
    machine::CedarMachine machine(cfg);
    net::TrafficParams params;
    params.pattern = pattern;
    params.rounds = rounds;
    auto res = net::runTraffic(machine.sim(), machine.gm().forwardNet(),
                               machine.gm().reverseNet(), params);
    TrafficPoint point;
    point.mean_latency = res.mean_latency;
    point.max_latency = res.max_latency;
    point.floor =
        static_cast<double>(machine.gm().forwardNet().minLatency() +
                            machine.gm().reverseNet().minLatency());
    point.packets = res.packets;
    point.delivered = res.delivered_words;
    point.makespan = res.makespan;
    return point;
}

void
runTrafficScale256(ScenarioContext &ctx)
{
    std::printf("256-cluster study: 2048 ports, every fabric family\n");
    std::printf("(%u rounds of request+reply traffic under the "
                "watchdog)\n\n",
                rounds);

    const double nan = std::numeric_limits<double>::quiet_NaN();
    const net::TrafficPattern patterns[] = {
        net::TrafficPattern::uniform, net::TrafficPattern::hot_spot};

    struct PointKey
    {
        const FabricVariant *fabric;
        net::TrafficPattern pattern;
    };
    std::vector<PointKey> keys;
    std::vector<std::function<TrafficPoint(exec::RunContext &)>> tasks;
    for (const auto &fabric : fabric_variants) {
        for (net::TrafficPattern pattern : patterns) {
            keys.push_back({&fabric, pattern});
            tasks.push_back([&ctx, &fabric, pattern](exec::RunContext &) {
                return runPoint(ctx, fabric, pattern);
            });
        }
    }
    auto points =
        exec::parallelMap<TrafficPoint>(ctx.jobs(), std::move(tasks));

    core::TableWriter table({"fabric", "pattern", "mean lat", "max lat",
                             "floor", "makespan"});
    bool conserved = true, floored = true, completed = true;
    for (std::size_t i = 0; i < keys.size(); ++i) {
        const auto &k = keys[i];
        const auto &p = points[i];
        // The combined fabric carries both directions, so its forward
        // delivery count includes the responses too.
        conserved = conserved &&
                    p.delivered ==
                        p.packets * (k.fabric->combined ? 2u : 1u);
        floored = floored && p.mean_latency >= p.floor;
        completed = completed && p.packets == rounds * scale_ports;
        table.row({k.fabric->label, net::trafficPatternName(k.pattern),
                   core::fmt(p.mean_latency, 3),
                   core::fmt(p.max_latency, 0), core::fmt(p.floor, 0),
                   core::fmt(static_cast<double>(p.makespan), 0)});
        std::string key = std::string(k.fabric->label) + "_" +
                          net::trafficPatternName(k.pattern) + "_lat";
        ctx.cell(key, p.mean_latency,
                 {nan, 0.0, 1e-6,
                  "mean latency at 2048 ports (floor " +
                      core::fmt(p.floor, 0) +
                      "; tolerance auto-derived from determinism)"});
    }
    table.print();

    ctx.cell("all_fabrics_complete", completed ? 1.0 : 0.0,
             {1.0, 0.0, 0.0,
              "a 32x-scale machine finishes every pattern under the "
              "watchdog"});
    ctx.cell("packet_conservation", conserved ? 1.0 : 0.0,
             {1.0, 0.0, 0.0, "every injected packet delivered at 32x"});
    ctx.cell("latency_floor_respected", floored ? 1.0 : 0.0,
             {1.0, 0.0, 0.0,
              "minLatency() stays a true floor at 2048 ports"});

    std::printf(
        "\nreading: the machine the paper could only speculate about "
        "builds, routes, and\nterminates — hot-spot traffic serializes "
        "on the one delivery link exactly as the\nfabric contracts "
        "predict, and nothing deadlocks at 32x the published scale.\n");
}

} // namespace

namespace detail {

void
registerTrafficScale256()
{
    registerScenario({"traffic_scale256",
                      "256-cluster traffic (32x the paper)", true,
                      runTrafficScale256});
}

} // namespace detail

} // namespace cedar::valid
