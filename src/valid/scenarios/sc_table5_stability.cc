/**
 * @file
 * Scenario: Table 5 — instability In(13, e) for the Perfect codes on
 * Cedar, the Cray 1, and the Cray Y-MP/8, plus the PPT2 verdicts.
 *
 * Paper cells: Cedar 63.4 / 5.8 / -, Cray 1 - / 10.9 / 4.6,
 * YMP/8 75.3 / 29.0 / 5.3. Cedar and the Cray 1 pass PPT2 with two
 * exceptions; the YMP needs six (about half the suite) and fails.
 * Our evaluator applies the workstation bound strictly, so the Cray 1
 * needs four exceptions here (the paper's own text is internally
 * inconsistent with its Table 5 on this point).
 */

#include <cstdio>

#include "core/cedar.hh"
#include "valid/scenario.hh"

namespace cedar::valid {

namespace {

void
runTable5(ScenarioContext &ctx)
{
    perfect::PerfectModel model;
    std::vector<double> cedar_rates = model.autoRates();
    std::vector<double> cray1_rates = method::cray1Ref().autoRates();
    std::vector<double> ymp_rates = method::ympRef().autoRates();

    std::printf("Table 5: Instability for Perfect codes\n\n");
    core::TableWriter table(
        {"system", "In(13,0)", "In(13,2)", "In(13,6)", "paper"});
    auto emit = [&](const char *name, const std::vector<double> &rates,
                    const char *paper) {
        table.row({name, core::fmt(method::instability(rates, 0)),
                   core::fmt(method::instability(rates, 2)),
                   core::fmt(method::instability(rates, 6)), paper});
    };
    emit("Cedar", cedar_rates, "63.4 / 5.8 / -");
    emit("Cray 1", cray1_rates, "- / 10.9 / 4.6");
    emit("YMP/8", ymp_rates, "75.3 / 29.0 / 5.3");
    table.print();

    std::printf("\nPPT2 (workstation-level stability In <= 6, small "
                "exceptions):\n");
    for (auto [name, rates] :
         {std::pair<const char *, std::vector<double> *>{
              "Cedar", &cedar_rates},
          {"Cray 1", &cray1_rates},
          {"YMP/8", &ymp_rates}}) {
        auto r = method::evaluatePpt2(*rates);
        std::printf("  %-7s exceptions needed: %u  In at e: %.1f  -> "
                    "%s\n",
                    name, r.exceptions_needed, r.instability_at_e,
                    r.passed ? "passes" : "fails");
    }
    std::printf("(paper: Cedar and Cray 1 pass with two exceptions; the "
                "YMP needs six and fails)\n");
    std::printf("\nnote: the paper's text passes the Cray 1 with two "
                "exceptions even though its own\nTable 5 gives "
                "In(13,2) = 10.9 > 6 — an internal inconsistency; our "
                "evaluator applies\nthe workstation bound strictly, so "
                "the Cray 1 needs four exceptions here.\n");

    ctx.cell("cedar_in_0", method::instability(cedar_rates, 0),
             {63.4, 0.05, 1e-6, "Table 5: Cedar In(13,0)"});
    ctx.cell("cedar_in_2", method::instability(cedar_rates, 2),
             {5.8, 0.1, 1e-6, "Table 5: Cedar In(13,2)"});
    ctx.cell("cray1_in_2", method::instability(cray1_rates, 2),
             {10.9, 0.05, 1e-6, "Table 5: Cray 1 In(13,2)"});
    ctx.cell("cray1_in_6", method::instability(cray1_rates, 6),
             {4.6, 0.05, 1e-6, "Table 5: Cray 1 In(13,6)"});
    ctx.cell("ymp_in_0", method::instability(ymp_rates, 0),
             {75.3, 0.05, 1e-6, "Table 5: YMP/8 In(13,0)"});
    ctx.cell("ymp_in_2", method::instability(ymp_rates, 2),
             {29.0, 0.05, 1e-6, "Table 5: YMP/8 In(13,2)"});
    ctx.cell("ymp_in_6", method::instability(ymp_rates, 6),
             {5.3, 0.05, 1e-6, "Table 5: YMP/8 In(13,6)"});

    auto cedar_ppt2 = method::evaluatePpt2(cedar_rates);
    auto cray1_ppt2 = method::evaluatePpt2(cray1_rates);
    auto ymp_ppt2 = method::evaluatePpt2(ymp_rates);
    ctx.cell("cedar_ppt2_pass", cedar_ppt2.passed ? 1.0 : 0.0,
             {1.0, 0.0, 0.0, "in-text: Cedar passes PPT2"});
    ctx.cell("cedar_ppt2_exceptions", cedar_ppt2.exceptions_needed,
             {2.0, 0.0, 0.0, "in-text: with two exceptions"});
    ctx.cell("cray1_ppt2_exceptions", cray1_ppt2.exceptions_needed,
             {4.0, 0.0, 0.0,
              "strict workstation bound: Cray 1 needs four (paper's "
              "text says two, contradicting its Table 5)"});
    ctx.cell("ymp_ppt2_pass", ymp_ppt2.passed ? 1.0 : 0.0,
             {0.0, 0.0, 0.0, "in-text: the YMP fails PPT2"});
    ctx.cell("ymp_ppt2_exceptions", ymp_ppt2.exceptions_needed,
             {6.0, 0.0, 0.0,
              "in-text: the YMP needs six exceptions, half the suite"});
}

} // namespace

namespace detail {

void
registerTable5Stability()
{
    registerScenario({"table5_stability",
                      "Table 5 - instability and PPT2", true,
                      runTable5});
}

} // namespace detail

} // namespace cedar::valid
