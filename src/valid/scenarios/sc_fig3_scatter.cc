/**
 * @file
 * Scenario: Figure 3 — YMP-versus-Cedar efficiency scatter for the
 * manually optimized Perfect codes and the PPT1 verdicts. Paper
 * reading of the figure: Cedar about one quarter high and three
 * quarters intermediate with none unacceptable; the YMP about half
 * and half with one unacceptable; both systems pass PPT1.
 */

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "core/cedar.hh"
#include "valid/scenario.hh"

namespace cedar::valid {

namespace {

void
runFig3(ScenarioContext &ctx)
{
    perfect::PerfectModel model;
    auto hand = model.evaluateSuite(perfect::Level::hand);
    const auto &ymp = method::ympRef();

    // ASCII scatter: x = Cedar efficiency, y = YMP efficiency.
    constexpr int width = 56, height = 20;
    std::vector<std::string> canvas(height, std::string(width, ' '));
    auto plot = [&](double x, double y, char mark) {
        int cx = std::min(width - 1, static_cast<int>(x * (width - 1)));
        int cy = std::min(height - 1,
                          static_cast<int>((1.0 - y) * (height - 1)));
        canvas[cy][cx] = mark;
    };

    method::BandCount cedar_bands, ymp_bands;
    std::printf("Figure 3: Cray YMP/8 vs Cedar efficiency (manually "
                "optimized Perfect codes)\n\n");
    core::TableWriter table({"code", "Cedar eff", "Cedar band",
                             "YMP eff", "YMP band"});
    for (std::size_t i = 0; i < hand.size(); ++i) {
        double cedar_eff = method::efficiency(hand[i].speedup, 32);
        double ymp_eff = ymp.codes[i].manual_efficiency;
        auto cb = method::classifyEfficiency(cedar_eff, 32);
        auto yb = method::classifyEfficiency(ymp_eff, 8);
        cedar_bands.add(cb);
        ymp_bands.add(yb);
        plot(cedar_eff, ymp_eff, hand[i].code[0]);
        table.row({hand[i].code, core::fmt(cedar_eff, 2),
                   method::bandName(cb), core::fmt(ymp_eff, 2),
                   method::bandName(yb)});
    }
    table.print();

    std::printf("\nscatter (x: Cedar efficiency 0..1, y: YMP efficiency "
                "0..1, letter = code initial):\n");
    double ymp_acc = method::acceptableThreshold(8) / 8.0;
    double cedar_acc = method::acceptableThreshold(32) / 32.0;
    for (int r = 0; r < height; ++r) {
        double y = 1.0 - static_cast<double>(r) / (height - 1);
        char edge = (std::abs(y - 0.5) < 0.026 ||
                     std::abs(y - ymp_acc) < 0.026)
                        ? '-'
                        : '|';
        std::printf("  %c%s\n", edge, canvas[r].c_str());
    }
    std::printf("  +");
    for (int c = 0; c < width; ++c) {
        double x = static_cast<double>(c) / (width - 1);
        bool tick = std::abs(x - 0.5) < 0.01 ||
                    std::abs(x - cedar_acc) < 0.01;
        std::printf("%c", tick ? '+' : '-');
    }
    std::printf("\n  (vertical ticks: Cedar bands at eff %.2f and 0.5; "
                "horizontal: YMP bands at %.2f and 0.5)\n\n",
                cedar_acc, ymp_acc);

    std::printf("band counts (paper):\n");
    std::printf("  Cedar: high %u (~3 of 13), intermediate %u (~10), "
                "unacceptable %u (0)\n",
                cedar_bands.high, cedar_bands.intermediate,
                cedar_bands.unacceptable);
    std::printf("  YMP:   high %u (~6), intermediate %u (~6), "
                "unacceptable %u (1)\n",
                ymp_bands.high, ymp_bands.intermediate,
                ymp_bands.unacceptable);

    auto cedar_ppt1 = method::evaluatePpt1(model.manualSpeedups(), 32);
    std::vector<double> ymp_spd;
    for (double e : ymp.manualEfficiencies())
        ymp_spd.push_back(e * 8);
    auto ymp_ppt1 = method::evaluatePpt1(ymp_spd, 8);
    std::printf("\nPPT1 (delivered performance): Cedar %s, YMP %s "
                "(paper: both pass)\n",
                cedar_ppt1.passed ? "passes" : "fails",
                ymp_ppt1.passed ? "passes" : "fails");

    ctx.cell("cedar_high", cedar_bands.high,
             {3.0, 0.0, 0.0,
              "Fig. 3 reading: about a quarter of 13 codes high"});
    ctx.cell("cedar_intermediate", cedar_bands.intermediate,
             {10.0, 0.0, 0.0,
              "Fig. 3 reading: about three quarters intermediate"});
    ctx.cell("cedar_unacceptable", cedar_bands.unacceptable,
             {0.0, 0.0, 0.0, "Fig. 3 reading: none unacceptable"});
    ctx.cell("ymp_high", ymp_bands.high,
             {6.0, 0.0, 0.0, "Fig. 3 reading: about half high"});
    ctx.cell("ymp_intermediate", ymp_bands.intermediate,
             {6.0, 0.0, 0.0, "Fig. 3 reading: about half intermediate"});
    ctx.cell("ymp_unacceptable", ymp_bands.unacceptable,
             {1.0, 0.0, 0.0, "Fig. 3 reading: one unacceptable"});
    ctx.cell("cedar_ppt1_pass", cedar_ppt1.passed ? 1.0 : 0.0,
             {1.0, 0.0, 0.0, "in-text: Cedar passes PPT1"});
    ctx.cell("ymp_ppt1_pass", ymp_ppt1.passed ? 1.0 : 0.0,
             {1.0, 0.0, 0.0, "in-text: the YMP passes PPT1"});
}

} // namespace

namespace detail {

void
registerFig3Scatter()
{
    registerScenario({"fig3_scatter",
                      "Figure 3 - YMP vs Cedar efficiency scatter", true,
                      runFig3});
}

} // namespace detail

} // namespace cedar::valid
