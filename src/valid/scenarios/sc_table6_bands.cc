/**
 * @file
 * Scenario: Table 6 — restructuring efficiency band counts for the
 * compiled Perfect codes. Paper: Cedar 1 high / 9 intermediate /
 * 3 unacceptable; Cray YMP 0 / 6 / 7. Our reproduction matches the
 * YMP exactly and Cedar to within one code on the high boundary.
 */

#include <cstdio>

#include "core/cedar.hh"
#include "valid/scenario.hh"

namespace cedar::valid {

namespace {

void
runTable6(ScenarioContext &ctx)
{
    perfect::PerfectModel model;
    auto cedar_ppt3 = method::evaluatePpt3(model.autoSpeedups(), 32);
    auto ymp_ppt3 =
        method::evaluatePpt3(method::ympRef().autoSpeedups(), 8);

    std::printf("Table 6: Restructuring Efficiency\n\n");
    core::TableWriter table({"performance level", "Cedar (paper)",
                             "Cray YMP (paper)"});
    table.row({"High (Ep >= .5)",
               core::fmt(cedar_ppt3.bands.high, 0) + " (1)",
               core::fmt(ymp_ppt3.bands.high, 0) + " (0)"});
    table.row({"Intermediate (Ep >= 1/2log2P)",
               core::fmt(cedar_ppt3.bands.intermediate, 0) + " (9)",
               core::fmt(ymp_ppt3.bands.intermediate, 0) + " (6)"});
    table.row({"Unacceptable (Ep < 1/2log2P)",
               core::fmt(cedar_ppt3.bands.unacceptable, 0) + " (3)",
               core::fmt(ymp_ppt3.bands.unacceptable, 0) + " (7)"});
    table.print();

    std::printf("\nthresholds: Cedar P=32: high speedup >= %.1f, "
                "acceptable >= %.1f; YMP P=8: >= %.1f / >= %.2f\n",
                method::highThreshold(32), method::acceptableThreshold(32),
                method::highThreshold(8), method::acceptableThreshold(8));
    std::printf("PPT3 outlook (paper: acceptable compiled levels "
                "reachable in the next few years):\n"
                "  Cedar promising: %s   YMP promising: %s\n",
                cedar_ppt3.promising ? "yes" : "no",
                ymp_ppt3.promising ? "yes" : "no");

    ctx.cell("cedar_high", cedar_ppt3.bands.high,
             {1.0, 0.0, 0.0, "Table 6: Cedar high band count"});
    ctx.cell("cedar_intermediate", cedar_ppt3.bands.intermediate,
             {9.0, 0.0, 0.0, "Table 6: Cedar intermediate band count"});
    ctx.cell("cedar_unacceptable", cedar_ppt3.bands.unacceptable,
             {3.0, 0.0, 0.0, "Table 6: Cedar unacceptable band count"});
    ctx.cell("ymp_high", ymp_ppt3.bands.high,
             {0.0, 0.0, 0.0, "Table 6: YMP high band count"});
    ctx.cell("ymp_intermediate", ymp_ppt3.bands.intermediate,
             {6.0, 0.0, 0.0, "Table 6: YMP intermediate band count"});
    ctx.cell("ymp_unacceptable", ymp_ppt3.bands.unacceptable,
             {7.0, 0.0, 0.0, "Table 6: YMP unacceptable band count"});
}

} // namespace

namespace detail {

void
registerTable6Bands()
{
    registerScenario({"table6_bands",
                      "Table 6 - restructuring efficiency", true,
                      runTable6});
}

} // namespace detail

} // namespace cedar::valid
