/**
 * @file
 * Scenario: the judging-parallelism methodology re-run past the paper.
 * Banded matvec speedups at 8/16/64/256 clusters (64 to 2048 CEs),
 * three problem sizes per scale, against a measured one-CE serial
 * baseline. Section 4.3's bands are auto-derived from P at every
 * scale — high is P/2, acceptable is P/(2 log2 P) — and the per-scale
 * size stability St must satisfy the paper's 0.5 <= St <= 1 criterion.
 * The honest result, frozen as exact property cells: every scale
 * lands in the intermediate band (network latency grows with log P
 * while the serial CE does not), and stays there stably.
 */

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "core/cedar.hh"
#include "exec/parallel.hh"
#include "valid/scenario.hh"

namespace cedar::valid {

namespace {

constexpr unsigned scales[] = {8u, 16u, 64u, 256u};
constexpr unsigned rows_per_ce[] = {128u, 256u, 512u};
constexpr unsigned band_width = 5;
constexpr unsigned strip = 32;

/** Flops per tick of a banded matvec on @p ces CEs of a scaled
 *  machine (clusters == 0 runs the one-CE serial baseline). */
double
bandedRate(const ScenarioContext &ctx, unsigned clusters, unsigned ces,
           unsigned n)
{
    auto cfg = machine::CedarConfig::scaled(clusters ? clusters : 1);
    ctx.tune(cfg);
    machine::CedarMachine machine(cfg);
    kernels::BandedParams params;
    params.n = n;
    params.bandwidth = band_width;
    params.ces = ces;
    params.strip = strip;
    auto res = kernels::runBanded(machine, params);
    return res.flops / static_cast<double>(res.end - res.start);
}

void
runScaledParallelism(ScenarioContext &ctx)
{
    std::printf("Judging parallelism past the paper: banded matvec at "
                "8-256 clusters\n");
    std::printf("(bands auto-derived per scale: high >= P/2, "
                "acceptable >= P/(2 log2 P))\n\n");

    const double nan = std::numeric_limits<double>::quiet_NaN();

    // One serial anchor plus 4 scales x 3 sizes, all independent runs.
    std::vector<std::function<double(exec::RunContext &)>> tasks;
    tasks.push_back([&ctx](exec::RunContext &) {
        return bandedRate(ctx, 0, 1, 4096);
    });
    for (unsigned clusters : scales) {
        for (unsigned rpc : rows_per_ce) {
            tasks.push_back([&ctx, clusters, rpc](exec::RunContext &) {
                unsigned ces = clusters * 8;
                return bandedRate(ctx, clusters, ces, ces * rpc);
            });
        }
    }
    auto rates = exec::parallelMap<double>(ctx.jobs(), std::move(tasks));
    const double serial_rate = rates[0];

    core::TableWriter table({"clusters", "CEs", "rows/CE", "rate",
                             "speedup", "band"});
    bool all_acceptable = true, any_high = false, all_stable = true;
    std::size_t next = 1;
    for (unsigned clusters : scales) {
        unsigned ces = clusters * 8;
        std::vector<double> speedups;
        for (unsigned rpc : rows_per_ce) {
            double rate = rates[next++];
            double spdup = rate / serial_rate;
            speedups.push_back(spdup);
            auto band = method::classify(spdup, ces);
            all_acceptable =
                all_acceptable && band != method::Band::unacceptable;
            any_high = any_high || band == method::Band::high;
            table.row({core::fmt(clusters, 0), core::fmt(ces, 0),
                       core::fmt(rpc, 0), core::fmt(rate, 3),
                       core::fmt(spdup, 1), method::bandName(band)});
            ctx.cell("c" + std::to_string(clusters) + "_speedup_r" +
                         std::to_string(rpc),
                     spdup,
                     {nan, 0.0, 1e-6,
                      "banded speedup at " + std::to_string(ces) +
                          " CEs (acceptable >= " +
                          core::fmt(method::acceptableThreshold(ces),
                                    1) +
                          ", high >= " +
                          core::fmt(method::highThreshold(ces), 1) +
                          ")"});
        }
        double st = method::stability(speedups, 0);
        double st1 = method::stability(speedups, 1);
        all_stable = all_stable && st1 >= 0.5 && st1 <= 1.0;
        ctx.cell("c" + std::to_string(clusters) + "_st", st,
                 {nan, 0.0, 1e-6,
                  "size stability St over three problem sizes at " +
                      std::to_string(ces) + " CEs"});
        ctx.cell("c" + std::to_string(clusters) + "_st1", st1,
                 {nan, 0.0, 1e-6,
                  "St with one excluded size (the paper's exception "
                  "mechanism) at " +
                      std::to_string(ces) + " CEs"});
    }
    table.print();

    ctx.cell("serial_rate", serial_rate,
             {nan, 0.0, 1e-6,
              "one-CE banded matvec baseline (flops/tick)"});
    ctx.cell("all_scales_acceptable", all_acceptable ? 1.0 : 0.0,
             {1.0, 0.0, 0.0,
              "every (P, N) observation clears P/(2 log2 P)"});
    ctx.cell("high_band_reached", any_high ? 1.0 : 0.0,
             {0.0, 0.0, 0.0,
              "honest reading: log-depth network latency keeps the "
              "scaled machines out of the P/2 band"});
    ctx.cell("all_scales_stable", all_stable ? 1.0 : 0.0,
             {1.0, 0.0, 0.0,
              "St(e=1) in [0.5, 1] at every scale (the paper's "
              "criterion, with its small-exception allowance)"});
    // The exceptional size is itself a finding worth freezing: at 512
    // CEs the 512-rows/CE problem puts every CE's band reads on a
    // power-of-two stride that resonates with the power-of-two module
    // interleave (gcd of the double-word row stride and the module
    // count = 256-way conflicts), collapsing the speedup. The paper's
    // module-conflict discussion predicts exactly this failure mode.
    double resonant = rates[1 + 2 * 3 + 2] / serial_rate; // c64, r512
    double smooth = rates[1 + 2 * 3 + 0] / serial_rate;   // c64, r128
    ctx.cell("c64_pow2_resonance_observed",
             resonant < 0.75 * smooth ? 1.0 : 0.0,
             {1.0, 0.0, 0.0,
              "power-of-two stride/interleave resonance at 512 CEs "
              "(the excluded exception)"});

    std::printf(
        "\nreading: the architecture scales with *intermediate* "
        "performance through 2048\nCEs — speedups track P/(2 log2 P) "
        "with stable St at every scale once the one\npower-of-two "
        "stride/interleave resonance (512 rows/CE at 512 CEs) is "
        "excluded,\nbut the widening gap to P/2 is the log-depth "
        "network tax the paper's Fundamental\nPrinciple predicts for "
        "machines grown without a faster clock.\n");
}

} // namespace

namespace detail {

void
registerScaledParallelism()
{
    registerScenario({"scaled_parallelism",
                      "Judging parallelism at 8-256 clusters", false,
                      runScaledParallelism});
}

} // namespace detail

} // namespace cedar::valid
