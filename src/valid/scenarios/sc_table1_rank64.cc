/**
 * @file
 * Scenario: Table 1 — rank-64 update MFLOPS for the three memory
 * system versions on 1-4 clusters, plus the derived in-text
 * observations. Canonical size n = 768 (the EXPERIMENTS.md command);
 * the paper ran 1K.
 *
 * Paper bands follow EXPERIMENTS.md: GM/no-pref is systematically ~8%
 * low, GM/pref at 4 clusters is 12% low (the integer conflict-extra
 * saturates at 8 words/cycle where the hardware sustained ~8.8), and
 * GM/cache tracks within ~5%.
 */

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "core/cedar.hh"
#include "exec/parallel.hh"
#include "valid/scenario.hh"

namespace cedar::valid {

namespace {

const double paper_cells[3][4] = {
    {14.5, 29.0, 43.0, 55.0},   // GM/no-pref
    {50.0, 84.0, 96.0, 104.0},  // GM/pref
    {52.0, 104.0, 152.0, 208.0} // GM/cache
};

const double paper_tols[3] = {0.12, 0.15, 0.08};

void
runTable1(ScenarioContext &ctx)
{
    const unsigned n = ctx.sizeOr(768);

    std::printf("Table 1: MFLOPS for rank-64 update on Cedar (n = %u)\n",
                n);
    std::printf("%-12s %10s %10s %10s %10s\n", "version", "1 cl.",
                "2 cl.", "3 cl.", "4 cl.");

    double measured[3][4] = {};
    const kernels::Rank64Version versions[3] = {
        kernels::Rank64Version::gm_no_prefetch,
        kernels::Rank64Version::gm_prefetch,
        kernels::Rank64Version::gm_cache,
    };
    const char *keys[3] = {"gm_nopref", "gm_pref", "gm_cache"};

    // The 12 (version, clusters) points are independent runs: each
    // task builds its own machine and returns one rate. The printed
    // table and the cells below read `measured` in a fixed order, so
    // output is byte-identical for any ctx.jobs().
    std::vector<std::function<double(exec::RunContext &)>> tasks;
    for (int v = 0; v < 3; ++v) {
        for (unsigned cl = 1; cl <= 4; ++cl) {
            tasks.push_back([&ctx, n, cl, ver =
                                              versions[v]](exec::RunContext &) {
                machine::CedarMachine machine(ctx.config());
                ctx.observe(machine, "rank64 n=" + std::to_string(n) +
                                         " clusters=" + std::to_string(cl));
                kernels::Rank64Params params;
                params.n = n;
                params.clusters = cl;
                params.version = ver;
                return kernels::runRank64(machine, params).mflopsRate();
            });
        }
    }
    auto rates = exec::parallelMap<double>(ctx.jobs(), std::move(tasks));

    for (int v = 0; v < 3; ++v) {
        std::printf("%-12s", kernels::rank64VersionName(versions[v]));
        for (unsigned cl = 1; cl <= 4; ++cl) {
            measured[v][cl - 1] = rates[std::size_t(v) * 4 + (cl - 1)];
            std::printf(" %10.1f", measured[v][cl - 1]);
            std::fflush(stdout);
        }
        std::printf("\n");
    }

    std::printf("\npaper:\n");
    const char *names[3] = {"GM/no-pref", "GM/pref", "GM/cache"};
    for (int v = 0; v < 3; ++v) {
        std::printf("%-12s", names[v]);
        for (int c = 0; c < 4; ++c)
            std::printf(" %10.1f", paper_cells[v][c]);
        std::printf("\n");
    }

    std::printf("\nderived (measured | paper):\n");
    std::printf("  prefetch improvement over no-pref: ");
    const double paper_pref[4] = {3.5, 2.9, 2.2, 1.9};
    for (int c = 0; c < 4; ++c) {
        std::printf("%.1f|%.1f ", measured[1][c] / measured[0][c],
                    paper_pref[c]);
    }
    std::printf("\n  cache improvement over no-pref:    ");
    const double paper_cache[4] = {3.5, 3.6, 3.5, 3.8};
    for (int c = 0; c < 4; ++c) {
        std::printf("%.1f|%.1f ", measured[2][c] / measured[0][c],
                    paper_cache[c]);
    }
    machine::CedarConfig cfg = ctx.config();
    std::printf("\n  32-CE cache %% of effective peak (%0.0f MFLOPS): "
                "%.0f%% | 74%%\n",
                cfg.effectivePeakMflops(),
                100.0 * measured[2][3] / cfg.effectivePeakMflops());

    ctx.metric("n", n);
    for (int v = 0; v < 3; ++v) {
        for (int c = 0; c < 4; ++c) {
            std::string key = std::string(keys[v]) + "_" +
                              std::to_string(c + 1) + "cl_mflops";
            std::string note = std::string("Table 1 ") + names[v] + ", " +
                               std::to_string(c + 1) + " cluster(s)";
            ctx.cell(key, measured[v][c],
                     {paper_cells[v][c], paper_tols[v], 1e-6, note});
        }
    }
    ctx.cell("pref_improvement_1cl", measured[1][0] / measured[0][0],
             {3.5, 0.1, 1e-6,
              "in-text: 3.5x prefetch improvement at one cluster"});
    ctx.cell("pref_improvement_4cl", measured[1][3] / measured[0][3],
             {1.9, 0.15, 1e-6,
              "signature collapse of prefetch effectiveness at 4 cl."});
    ctx.cell("cache_improvement_4cl", measured[2][3] / measured[0][3],
             {3.8, 0.15, 1e-6,
              "in-text: cache improvement 3.5-3.8 over no-pref"});
    ctx.cell("pct_effective_peak",
             100.0 * measured[2][3] / cfg.effectivePeakMflops(),
             {74.0, 0.08, 1e-6,
              "in-text: 32-CE cache version at 74% of effective peak"});
}

} // namespace

namespace detail {

void
registerTable1Rank64()
{
    registerScenario({"table1_rank64",
                      "Table 1 - rank-64 update MFLOPS", false,
                      runTable1});
}

} // namespace detail

} // namespace cedar::valid
