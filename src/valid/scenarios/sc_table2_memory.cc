/**
 * @file
 * Scenario: Table 2 — global memory latency and interarrival for the
 * four instrumented kernels at 8/16/32 CEs. The scanned paper's
 * numeric cells are unreadable, so the latency/interarrival cells are
 * drift-checked against the reproduced values and the paper's *stated
 * properties* (near-minimum one-cluster latency, contention growth,
 * the RK-worst ordering) are checked as their own cells.
 */

#include <cstdio>
#include <string>

#include "core/cedar.hh"
#include "valid/scenario.hh"

namespace cedar::valid {

namespace {

struct Row
{
    const char *kernel;
    double latency[3];
    double interarrival[3];
};

kernels::KernelResult
runKernel(ScenarioContext &ctx, const char *name, unsigned ces)
{
    machine::CedarMachine machine(ctx.config());
    ctx.observe(machine, std::string(name) + " ces=" +
                             std::to_string(ces));
    if (std::string(name) == "VL") {
        kernels::VloadParams p;
        p.ces = ces;
        p.repetitions = 300;
        return kernels::runVload(machine, p);
    }
    if (std::string(name) == "TM") {
        kernels::TridiagParams p;
        p.ces = ces;
        p.n = 1024 * ces;
        return kernels::runTridiag(machine, p);
    }
    if (std::string(name) == "RK") {
        kernels::Rank64Params p;
        p.version = kernels::Rank64Version::gm_prefetch;
        p.clusters = ces / 8;
        p.n = 256;
        return kernels::runRank64(machine, p);
    }
    kernels::CgTimedParams p;
    p.ces = ces;
    p.n = 1024 * ces;
    p.m = 128;
    p.iterations = 1;
    return kernels::runCgTimed(machine, p);
}

void
runTable2(ScenarioContext &ctx)
{
    const char *names[4] = {"VL", "TM", "RK", "CG"};
    const unsigned procs[3] = {8, 16, 32};

    std::printf("Table 2: Global memory performance\n");
    std::printf("(cycles; hardware minimum: latency 8, interarrival 1;\n"
                " probe: PFU issue -> prefetch-buffer arrival)\n\n");

    core::TableWriter table({"kernel", "metric", "8 CEs", "16 CEs",
                             "32 CEs"});
    Row rows[4];
    for (int k = 0; k < 4; ++k) {
        rows[k].kernel = names[k];
        for (int p = 0; p < 3; ++p) {
            auto res = runKernel(ctx, names[k], procs[p]);
            rows[k].latency[p] = res.mean_latency;
            rows[k].interarrival[p] = res.mean_interarrival;
        }
        table.row({names[k], "Latency", core::fmt(rows[k].latency[0]),
                   core::fmt(rows[k].latency[1]),
                   core::fmt(rows[k].latency[2])});
        table.row({"", "Interarrival", core::fmt(rows[k].interarrival[0]),
                   core::fmt(rows[k].interarrival[1]),
                   core::fmt(rows[k].interarrival[2])});
    }
    table.print();

    auto growth = [&](int k) {
        return rows[k].latency[2] / rows[k].latency[0];
    };
    std::printf("\nstated properties:\n");
    std::printf("  one-cluster latency near minimum (8): VL %.1f, TM "
                "%.1f, RK %.1f, CG %.1f\n",
                rows[0].latency[0], rows[1].latency[0],
                rows[2].latency[0], rows[3].latency[0]);
    std::printf("  degradation 8->32 CEs (latency growth): VL %.2fx, TM "
                "%.2fx, RK %.2fx, CG %.2fx\n",
                growth(0), growth(1), growth(2), growth(3));
    std::printf("  expected: RK degrades most (largest blocks, full "
                "overlap); TM and CG suffer\n"
                "  approximately the same degradation "
                "(register-register operations reduce demand)\n");
    bool rk_worst = growth(2) >= growth(0) && growth(2) >= growth(1) &&
                    growth(2) >= growth(3);
    double tm_cg = growth(1) / growth(3);
    bool tm_cg_similar = tm_cg > 0.6 && tm_cg < 1.67;
    std::printf("  RK degrades most: %s;  TM/CG similar (ratio %.2f): "
                "%s\n",
                rk_worst ? "yes" : "NO", tm_cg,
                tm_cg_similar ? "yes" : "NO");

    const double nan = std::numeric_limits<double>::quiet_NaN();
    for (int k = 0; k < 4; ++k) {
        std::string kn = names[k];
        for (int p = 0; p < 3; ++p) {
            std::string ces = std::to_string(procs[p]);
            ctx.cell(kn + "_latency_" + ces + "ce", rows[k].latency[p],
                     {nan, 0.0, 1e-6,
                      "Table 2 " + kn + " latency at " + ces +
                          " CEs (scan unreadable; drift-checked)"});
            ctx.cell(kn + "_interarrival_" + ces + "ce",
                     rows[k].interarrival[p],
                     {nan, 0.0, 1e-6,
                      "Table 2 " + kn + " interarrival at " + ces +
                          " CEs"});
        }
    }
    // Stated properties as exact cells.
    ctx.cell("vl_latency_near_min",
             rows[0].latency[0] < 9.0 ? 1.0 : 0.0,
             {1.0, 0.0, 0.0,
              "stated: one-cluster VL latency near the 8-cycle min"});
    ctx.cell("rk_degrades_most", rk_worst ? 1.0 : 0.0,
             {1.0, 0.0, 0.0,
              "stated: RK degrades most quickly (256-word blocks)"});
    ctx.cell("tm_cg_growth_ratio", tm_cg,
             {1.0, 0.45, 1e-6,
              "stated: TM and CG suffer approximately the same "
              "degradation"});
    ctx.cell("rk_latency_growth", growth(2),
             {nan, 0.0, 1e-6,
              "5-9x latency growth 8->32 CEs; RK largest (9.1x)"});
}

} // namespace

namespace detail {

void
registerTable2Memory()
{
    registerScenario({"table2_memory",
                      "Table 2 - global memory performance", true,
                      runTable2});
}

} // namespace detail

} // namespace cedar::valid
