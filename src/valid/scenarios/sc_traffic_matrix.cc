/**
 * @file
 * Scenario: the (machine x topology x traffic) matrix. Every fabric
 * family the Topology interface supports — the paper's omega network,
 * a fat tree, a full crossbar, and a combined forward/reverse omega —
 * serves every synthetic pattern on machines 2x and 16x the paper's
 * cluster count. The paper publishes none of these numbers (it stops
 * at 4 clusters and one network), so every latency cell is a drift
 * tripwire with its tolerance auto-derived from the simulator's
 * determinism, annotated with the fabric's analytic min-latency floor;
 * the structural guarantees (packet conservation, the floor itself)
 * are frozen as exact property cells.
 */

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "core/cedar.hh"
#include "exec/parallel.hh"
#include "valid/scenario.hh"

namespace cedar::valid {

namespace {

struct FabricVariant
{
    const char *label;
    const char *topology;
    bool combined;
};

constexpr FabricVariant fabric_variants[] = {
    {"omega", "omega", false},
    {"fattree", "fattree", false},
    {"crossbar", "crossbar", false},
    {"combined", "omega", true},
};

struct TrafficPoint
{
    double mean_latency = 0.0;
    double mean_queueing = 0.0;
    double floor = 0.0;
    unsigned packets = 0;
    unsigned delivered = 0;
};

TrafficPoint
runPoint(const ScenarioContext &ctx, unsigned clusters,
         const FabricVariant &fabric, net::TrafficPattern pattern)
{
    auto cfg = machine::CedarConfig::scaled(clusters, fabric.topology,
                                            fabric.combined);
    ctx.tune(cfg);
    machine::CedarMachine machine(cfg);
    net::TrafficParams params;
    params.pattern = pattern;
    params.rounds = 8;
    auto res = net::runTraffic(machine.sim(), machine.gm().forwardNet(),
                               machine.gm().reverseNet(), params);
    TrafficPoint point;
    point.mean_latency = res.mean_latency;
    point.mean_queueing = res.mean_queueing;
    point.floor =
        static_cast<double>(machine.gm().forwardNet().minLatency() +
                            machine.gm().reverseNet().minLatency());
    point.packets = res.packets;
    point.delivered = res.delivered_words;
    return point;
}

void
runTrafficMatrix(ScenarioContext &ctx)
{
    std::printf("Traffic matrix: every fabric family x every synthetic "
                "pattern\n");
    std::printf("(8 rounds of request+reply traffic; latencies in "
                "cycles)\n\n");

    const double nan = std::numeric_limits<double>::quiet_NaN();
    const unsigned scales[] = {8u, 64u};
    const auto patterns = net::allTrafficPatterns();

    struct PointKey
    {
        unsigned clusters;
        const FabricVariant *fabric;
        net::TrafficPattern pattern;
    };
    std::vector<PointKey> keys;
    std::vector<std::function<TrafficPoint(exec::RunContext &)>> tasks;
    for (unsigned clusters : scales) {
        for (const auto &fabric : fabric_variants) {
            for (net::TrafficPattern pattern : patterns) {
                keys.push_back({clusters, &fabric, pattern});
                tasks.push_back(
                    [&ctx, clusters, &fabric,
                     pattern](exec::RunContext &) {
                        return runPoint(ctx, clusters, fabric, pattern);
                    });
            }
        }
    }
    auto points =
        exec::parallelMap<TrafficPoint>(ctx.jobs(), std::move(tasks));

    core::TableWriter table(
        {"clusters", "fabric", "pattern", "mean lat", "queueing", "floor"});
    bool conserved = true, floored = true;
    for (std::size_t i = 0; i < keys.size(); ++i) {
        const auto &k = keys[i];
        const auto &p = points[i];
        // delivered counts the forward fabric's words: one request
        // per packet on a split fabric, request + response when the
        // combined fabric carries both directions.
        unsigned expected_words =
            p.packets * (k.fabric->combined ? 2u : 1u);
        conserved = conserved && p.delivered == expected_words &&
                    p.packets == 8u * k.clusters * 8u;
        floored = floored && p.mean_latency >= p.floor;
        table.row({core::fmt(k.clusters, 0), k.fabric->label,
                   net::trafficPatternName(k.pattern),
                   core::fmt(p.mean_latency, 3),
                   core::fmt(p.mean_queueing, 3), core::fmt(p.floor, 0)});
        std::string key = "c" + std::to_string(k.clusters) + "_" +
                          k.fabric->label + "_" +
                          net::trafficPatternName(k.pattern) + "_lat";
        ctx.cell(key, p.mean_latency,
                 {nan, 0.0, 1e-6,
                  "mean latency, beyond-paper fabric (floor " +
                      core::fmt(p.floor, 0) +
                      "; tolerance auto-derived from determinism)"});
    }
    table.print();

    ctx.cell("packet_conservation", conserved ? 1.0 : 0.0,
             {1.0, 0.0, 0.0,
              "every injected packet delivered, at every point"});
    ctx.cell("latency_floor_respected", floored ? 1.0 : 0.0,
             {1.0, 0.0, 0.0,
              "mean latency never beats the minLatency() contract"});

    std::printf(
        "\nreading: the crossbar is the latency floor, the omega pays "
        "log8(P) stages, the\nfat tree pays twice its levels but "
        "rewards locality, and folding both directions\nonto one "
        "fabric costs queueing under load — the ordering the golden "
        "cells freeze.\n");
}

} // namespace

namespace detail {

void
registerTrafficMatrix()
{
    registerScenario({"traffic_matrix",
                      "Topology x traffic matrix (beyond the paper)",
                      true, runTrafficMatrix});
}

} // namespace detail

} // namespace cedar::valid
