/**
 * @file
 * The scenario registry: every reproduction bench, wrapped as a
 * headless parameterized run that emits structured metrics.
 *
 * A Scenario is the machine-checkable form of one EXPERIMENTS.md
 * section. Its run function drives the simulator exactly the way the
 * bench binary does, prints the same human-readable tables, and
 * records every number that EXPERIMENTS.md quotes as a *cell*: a
 * metric annotated with the paper's published value, an accepted
 * deviation band, and a provenance note. Cells are frozen into
 * tests/golden/<name>.json by `cedar_validate --update-golden` and
 * re-checked on every run, so a perf PR that silently shifts a
 * published number fails in CI instead of shipping.
 */

#ifndef CEDARSIM_VALID_SCENARIO_HH
#define CEDARSIM_VALID_SCENARIO_HH

#include <functional>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "machine/config.hh"
#include "sim/telemetry.hh"
#include "sim/types.hh"

namespace cedar::machine {
class CedarMachine;
}

namespace cedar::valid {

/**
 * Declaration of a checked cell, made where the value is measured.
 * Defaults suit a derived quantity with no directly published value:
 * no paper band, tight drift protection against regressions.
 */
struct CellSpec
{
    /** Published value; NaN when the paper states no direct number. */
    double paper = std::numeric_limits<double>::quiet_NaN();
    /**
     * Accepted relative deviation from the paper value. The default is
     * deliberately generous — the substrate is a simulator and
     * EXPERIMENTS.md documents systematic offsets; cells with exact
     * targets (counts, self-checks) narrow it to 0.
     */
    double paper_tol = 0.15;
    /**
     * Accepted relative drift from the *reproduced* golden value. The
     * simulator is deterministic, so this is tight by default: it is
     * the regression tripwire. Widen only for cells derived from
     * host-dependent measurements (there are none today).
     */
    double drift = 1e-6;
    /** Provenance: which table/figure/statement this cell encodes. */
    std::string note;
};

/** One recorded value: a plain metric or a golden-checked cell. */
struct MetricValue
{
    std::string key;
    double value = 0.0;
    /** True when declared via cell() and subject to golden checking. */
    bool checked = false;
    CellSpec spec;
};

/** Structured output of one scenario run. */
struct Metrics
{
    std::vector<MetricValue> values;
    /** String annotations (not checked; carried into bench JSON). */
    std::vector<std::pair<std::string, std::string>> notes;
    /**
     * Interval-telemetry JSONL captured during the run (empty unless
     * ScenarioOptions::telemetry_interval was set). Records appear in
     * point submission order, so the text is byte-identical at any
     * scenario-level worker count.
     */
    std::string telemetry;

    const MetricValue *find(const std::string &key) const;
    double at(const std::string &key) const;
};

/** Options for one scenario run. */
struct ScenarioOptions
{
    /**
     * Positional size override from the bench command line; 0 keeps
     * the scenario's canonical size. Golden checking only applies at
     * the canonical size.
     */
    unsigned size = 0;
    /**
     * Applied to every machine configuration the scenario builds —
     * the injected-regression hook `cedar_validate --perturb` uses to
     * prove the suite catches model changes. Sweep scenarios apply it
     * from RunPool workers, so the hook must be re-entrant (pure
     * function of the config it is handed; no mutable captures).
     */
    std::function<void(machine::CedarConfig &)> config_hook;
    /**
     * Worker budget for the scenario's *internal* parameter sweep
     * (exec::parallelMap over independent machine runs). 1 keeps the
     * literal serial path; results are bit-identical either way.
     */
    unsigned jobs = 1;
    /**
     * Interval-telemetry sampling period in ticks; 0 disables. When
     * set, every machine the scenario hands to ctx.observe() streams
     * JSONL records into the context, and the internal sweep is forced
     * serial (jobs() returns 1) so records land in point order.
     */
    Tick telemetry_interval = 0;
    /**
     * Sampled-simulation mode (`cedar_validate --sample`): scenarios
     * with a phased workload estimate it through the live-point
     * sampler (src/sample) instead of running every unit in detail.
     * Estimates are not golden-checked — the driver reports their
     * metrics without consulting the golden file — so the flag is an
     * exploration/speed mode; the canonical sampled-agreement golden
     * (sampled_rank64) stays pinned by the default path.
     */
    bool sample = false;
};

/**
 * Handed to a scenario's run function; collects cells and metrics.
 *
 * Not thread-safe by design: cell(), metric(), and note() must only be
 * called from the thread running the scenario. A sweep scenario that
 * fans its points out over jobs() workers returns plain values from
 * each point task and emits cells in a serial reduce afterwards, so
 * cell order — and therefore golden files and JSON reports — is
 * independent of worker scheduling (DESIGN.md §10).
 */
class ScenarioContext
{
  public:
    explicit ScenarioContext(const ScenarioOptions &opts) : _opts(opts) {}

    /** The canonical-or-overridden size parameter. */
    unsigned
    sizeOr(unsigned canonical) const
    {
        return _opts.size ? _opts.size : canonical;
    }

    /** True when the run uses canonical parameters (goldens apply). */
    bool canonical() const { return _opts.size == 0; }

    /** Worker budget for the scenario's internal parameter sweep
     *  (forced to 1 while telemetry streams, to keep point order). */
    unsigned
    jobs() const
    {
        if (_opts.telemetry_interval)
            return 1;
        return _opts.jobs ? _opts.jobs : 1;
    }

    /** True when interval telemetry is being captured. */
    bool telemetryEnabled() const { return _opts.telemetry_interval > 0; }

    /** True when the run should estimate via sampled simulation. */
    bool sampleMode() const { return _opts.sample; }

    /** The standard machine configuration with any perturbation. */
    machine::CedarConfig
    config() const
    {
        machine::CedarConfig cfg = machine::CedarConfig::standard();
        tune(cfg);
        return cfg;
    }

    /** Apply the perturbation hook to a custom configuration. */
    void
    tune(machine::CedarConfig &cfg) const
    {
        if (_opts.config_hook)
            _opts.config_hook(cfg);
    }

    /** Record an unchecked metric (informational only). */
    void
    metric(const std::string &key, double value)
    {
        _metrics.values.push_back({key, value, false, {}});
    }

    /** Record a string annotation. */
    void
    note(const std::string &key, const std::string &value)
    {
        _metrics.notes.emplace_back(key, value);
    }

    /** Record a golden-checked cell. */
    void
    cell(const std::string &key, double value, CellSpec spec = {})
    {
        _metrics.values.push_back({key, value, true, std::move(spec)});
    }

    const Metrics &metrics() const { return _metrics; }

    /**
     * Offer a machine for observation. A no-op unless telemetry is
     * enabled; when it is, a point-marker record naming @p point is
     * written and the machine streams interval records into this
     * context until it is destroyed. Call right after constructing
     * each machine, from the scenario thread only (telemetry forces
     * the internal sweep serial, so point lambdas qualify).
     */
    void observe(machine::CedarMachine &m,
                 const std::string &point = "") const;

    /** The captured telemetry JSONL (empty when disabled). */
    std::string telemetryText() const { return _telemetry.text(); }

  private:
    const ScenarioOptions &_opts;
    Metrics _metrics;
    /** Mutable so const helpers can offer machines for observation —
     *  recording telemetry never alters the scenario's results. */
    mutable RingTelemetrySink _telemetry;
};

/** One registered reproduction scenario. */
struct Scenario
{
    /** Matches the bench binary and the golden file stem. */
    std::string name;
    /** The EXPERIMENTS.md section this scenario reproduces. */
    std::string title;
    /**
     * Fast scenarios run in tier-1 ctest; slow full sweeps are
     * registered under the `validation` configuration only.
     */
    bool fast = true;
    std::function<void(ScenarioContext &)> run;
};

/** Register a scenario (called by the per-scenario registrars). */
void registerScenario(Scenario s);

/** All registered scenarios, in registration (EXPERIMENTS.md) order. */
const std::vector<Scenario> &allScenarios();

/** Find a scenario by exact name; nullptr when absent. */
const Scenario *findScenario(const std::string &name);

/** Run one scenario and return its metrics. */
Metrics runScenario(const Scenario &s, const ScenarioOptions &opts);

/**
 * RAII stdout silencer: parks the stream in /dev/null so scenario
 * table printing disappears during headless validation runs (the same
 * trick core::BenchOutput uses for --json).
 */
class StdoutSilencer
{
  public:
    StdoutSilencer();
    ~StdoutSilencer();
    StdoutSilencer(const StdoutSilencer &) = delete;
    StdoutSilencer &operator=(const StdoutSilencer &) = delete;

  private:
    int _saved_fd = -1;
};

} // namespace cedar::valid

#endif // CEDARSIM_VALID_SCENARIO_HH
