/**
 * @file
 * A minimal JSON value type with a recursive-descent parser and a
 * pretty printer, sized for the golden-file schema (objects, arrays,
 * strings, numbers, booleans, null). No external dependency: the
 * container image is fixed, so the validation subsystem carries its
 * own reader for the few kilobytes of golden data it owns.
 *
 * Object member order is preserved on parse and emit so regenerated
 * golden files diff cleanly against the checked-in ones.
 */

#ifndef CEDARSIM_VALID_JSON_HH
#define CEDARSIM_VALID_JSON_HH

#include <cstddef>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace cedar::valid {

/** One JSON value; objects keep members in insertion order. */
class Json
{
  public:
    enum class Type
    {
        null,
        boolean,
        number,
        string,
        array,
        object,
    };

    Json() = default;
    static Json makeNull() { return Json(); }
    static Json of(bool b);
    static Json of(double v);
    static Json of(const std::string &s);
    static Json of(const char *s) { return of(std::string(s)); }
    static Json array();
    static Json object();

    Type type() const { return _type; }
    bool isNull() const { return _type == Type::null; }
    bool isNumber() const { return _type == Type::number; }
    bool isString() const { return _type == Type::string; }
    bool isArray() const { return _type == Type::array; }
    bool isObject() const { return _type == Type::object; }

    /** Value accessors; throw std::runtime_error on type mismatch. */
    bool asBool() const;
    double asNumber() const;
    const std::string &asString() const;

    /** Array access. */
    std::size_t size() const;
    const Json &at(std::size_t i) const;
    void push(Json v);

    /** Object access. `get` returns nullptr when the key is absent. */
    const Json *get(const std::string &key) const;
    void set(const std::string &key, Json v);
    const std::vector<std::pair<std::string, Json>> &members() const;

    /** Serialize; indent > 0 pretty-prints with that many spaces. */
    std::string dump(int indent = 0) const;

    /**
     * Parse @p text as one JSON document.
     * @throws std::runtime_error with line/column on malformed input
     */
    static Json parse(const std::string &text);

  private:
    void dumpTo(std::string &out, int indent, int depth) const;

    Type _type = Type::null;
    bool _bool = false;
    double _number = 0.0;
    std::string _string;
    std::vector<Json> _array;
    std::vector<std::pair<std::string, Json>> _object;
};

/** Escape a string for embedding in JSON output (no quotes added). */
std::string jsonEscape(const std::string &s);

} // namespace cedar::valid

#endif // CEDARSIM_VALID_JSON_HH
