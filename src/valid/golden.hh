/**
 * @file
 * Golden files: the checked-in, machine-readable form of every
 * EXPERIMENTS.md table and figure cell.
 *
 * Each scenario owns one JSON file under tests/golden/. A cell stores
 * four things: the paper's published value (when one exists), the
 * reproduced value frozen at `--update-golden` time, the accepted
 * deviation bands, and a provenance note naming the table/figure or
 * stated property it encodes. Checking a fresh run applies two
 * independent gates per cell:
 *
 *  - drift:  |measured - reproduced| <= drift * |reproduced|
 *            (tight; the simulator is deterministic, so any drift is
 *            an unintended model change — the regression tripwire);
 *  - paper:  |measured - paper| <= paper_tol * |paper|
 *            (the fidelity band; generous where EXPERIMENTS.md
 *            documents a systematic offset, zero where the
 *            reproduction is exact).
 */

#ifndef CEDARSIM_VALID_GOLDEN_HH
#define CEDARSIM_VALID_GOLDEN_HH

#include <string>
#include <vector>

#include "valid/scenario.hh"

namespace cedar::valid {

/** One frozen cell of a golden file. */
struct GoldenCell
{
    std::string key;
    /** Reproduced value frozen at --update-golden time. */
    double value = 0.0;
    /** Published value; NaN when the paper has no direct number. */
    double paper = std::numeric_limits<double>::quiet_NaN();
    /** Relative band around the paper value. */
    double paper_tol = 0.0;
    /** Relative band around the reproduced value. */
    double drift = 1e-6;
    /** Which table/figure/statement this encodes. */
    std::string note;

    bool hasPaper() const { return paper == paper; }
};

/** A scenario's complete golden record. */
struct GoldenFile
{
    std::string scenario;
    /** EXPERIMENTS.md section / paper table the cells come from. */
    std::string source;
    std::vector<GoldenCell> cells;

    const GoldenCell *find(const std::string &key) const;
};

/** Outcome of checking one cell against a fresh measurement. */
struct CellResult
{
    std::string key;
    double measured = 0.0;
    double expected = 0.0;
    double paper = std::numeric_limits<double>::quiet_NaN();
    /** Relative drift from the frozen value actually observed. */
    double drift_seen = 0.0;
    bool present = true;   ///< metric emitted by the run
    bool drift_ok = true;  ///< within the regression band
    bool paper_ok = true;  ///< within the paper fidelity band
    std::string note;

    bool ok() const { return present && drift_ok && paper_ok; }
};

/** Outcome of checking a whole scenario. */
struct CheckResult
{
    std::string scenario;
    std::vector<CellResult> cells;
    /** Cells the run emitted that the golden file does not know —
     *  a new cell was added without regenerating the golden. */
    std::vector<std::string> unknown_cells;
    unsigned failures = 0;

    bool ok() const { return failures == 0 && unknown_cells.empty(); }
};

/**
 * Directory holding the golden files: $CEDAR_GOLDEN_DIR when set,
 * otherwise the compiled-in source-tree tests/golden path.
 */
std::string goldenDir();

/** Path of one scenario's golden file inside @p dir. */
std::string goldenPath(const std::string &dir,
                       const std::string &scenario);

/**
 * Load a golden file.
 * @throws std::runtime_error on missing file or malformed schema
 */
GoldenFile loadGolden(const std::string &path);

/** Serialize and write @p golden to @p path (pretty-printed). */
void saveGolden(const std::string &path, const GoldenFile &golden);

/** Build the golden record for a scenario from a canonical run. */
GoldenFile goldenFromRun(const Scenario &scenario,
                         const Metrics &metrics);

/** Check a fresh run's metrics against the frozen golden record. */
CheckResult checkAgainstGolden(const GoldenFile &golden,
                               const Metrics &metrics);

/** Human-readable one-line summaries of every failing cell. */
std::string describeFailures(const CheckResult &result);

} // namespace cedar::valid

#endif // CEDARSIM_VALID_GOLDEN_HH
