/**
 * @file
 * The Xylem virtual-memory model.
 *
 * Xylem — the Cedar OS built over the four Alliant operating systems —
 * exports virtual memory with 4 KB pages. The paper's TRFD study
 * ([MaEG92], Section 4.2) found the multicluster version taking almost
 * four times the page faults of the one-cluster version and spending
 * close to half its time in virtual-memory activity: each additional
 * cluster first touching a page must fault even when a valid PTE
 * already exists in global memory, because translations are cached per
 * cluster. This module models exactly that mechanism:
 *
 *  - a global page table (one PTE per virtual page, in global memory);
 *  - a per-cluster translation cache (TLB) of bounded size;
 *  - three miss grades: TLB refill from a valid global PTE (the cheap
 *    "TLB miss fault" TRFD suffered), first-touch faults that must
 *    allocate the page, and capacity refills.
 *
 * The distributed-memory rewrite that fixed TRFD corresponds to
 * touching pages from only one cluster — measurable here directly.
 */

#ifndef CEDARSIM_XYLEM_VM_HH
#define CEDARSIM_XYLEM_VM_HH

#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "mem/address.hh"
#include "sim/named.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace cedar::xylem {

/** Cost parameters of the virtual-memory system. */
struct VmParams
{
    /** Translation-cache entries per cluster. */
    unsigned tlb_entries = 64;
    /** Cycles for a TLB hit (pipelined; effectively free). */
    Cycles hit_cycles = 0;
    /** Cycles to refill a TLB entry from a valid PTE in global memory
     *  (the kernel trap TRFD's extra clusters kept taking). */
    Cycles refill_cycles = 250;
    /** Cycles to service a first-touch fault (allocate + zero). */
    Cycles first_touch_cycles = 2500;
};

/** What a translation cost and why. */
struct Translation
{
    enum class Kind
    {
        hit,
        refill,      ///< valid global PTE, per-cluster TLB miss
        first_touch, ///< page had no PTE anywhere yet
    };
    Kind kind;
    Cycles cycles;
};

/**
 * The machine-wide virtual memory state: one global page table and a
 * TLB per cluster.
 */
class VirtualMemory : public Named
{
  public:
    VirtualMemory(const std::string &name, unsigned num_clusters,
                  const VmParams &params = VmParams{});

    /**
     * Translate a word address for a CE of @p cluster.
     * Updates the cluster's TLB (LRU) and the global page table.
     */
    Translation translate(unsigned cluster, Addr addr);

    /** Pre-create PTEs for a region (e.g. data loaded before timing). */
    void prefault(Addr start, std::uint64_t words);

    /** Drop one cluster's TLB (context switch / explicit flush). */
    void flushTlb(unsigned cluster);

    /** Total page faults (refills + first touches) taken by a cluster. */
    std::uint64_t faults(unsigned cluster) const;

    /** First-touch faults taken machine-wide. */
    std::uint64_t firstTouches() const { return _first_touches.value(); }

    /** TLB refill faults taken machine-wide. */
    std::uint64_t refills() const { return _refills.value(); }

    /** TLB hits machine-wide. */
    std::uint64_t hits() const { return _hits.value(); }

    /** Total cycles spent in VM activity by one cluster. */
    Tick vmCycles(unsigned cluster) const;

    const VmParams &params() const { return _params; }

    void resetStats();

  private:
    struct Tlb
    {
        /** page -> position in lru (front = most recent). */
        std::unordered_map<Addr, std::list<Addr>::iterator> map;
        std::list<Addr> lru;
        std::uint64_t faults = 0;
        Tick vm_cycles = 0;
    };

    bool tlbLookup(Tlb &tlb, Addr page);
    void tlbInsert(Tlb &tlb, Addr page);

    VmParams _params;
    std::vector<Tlb> _tlbs;
    std::unordered_map<Addr, bool> _page_table; ///< page -> PTE valid
    Counter _hits;
    Counter _refills;
    Counter _first_touches;
};

} // namespace cedar::xylem

#endif // CEDARSIM_XYLEM_VM_HH
