/**
 * @file
 * The Xylem I/O cost model.
 *
 * On the Alliant clusters, input/output runs on the interactive
 * processors (IPs) with their own caches, serialized with respect to
 * the computation that needs the data. The distinction the paper
 * exploits is formatted versus unformatted Fortran I/O: BDNA's
 * execution time fell to 70 seconds "by simply replacing formatted
 * with unformatted I/O" (Table 4), because formatted records pay a
 * per-item conversion cost on a scalar IP while unformatted transfers
 * stream at device bandwidth.
 */

#ifndef CEDARSIM_XYLEM_IO_HH
#define CEDARSIM_XYLEM_IO_HH

#include <cstdint>

#include "sim/logging.hh"
#include "sim/named.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace cedar::xylem {

/** Cost parameters of the IP-based I/O path. */
struct IoParams
{
    /** Microseconds to convert and emit one formatted item (a number
     *  through a FORMAT edit descriptor on the scalar IP). */
    double formatted_item_us = 12.0;
    /** Unformatted (binary) streaming bandwidth, MB/s. */
    double unformatted_mb_s = 4.0;
    /** Fixed per-request overhead (system call + IP dispatch), us. */
    double request_overhead_us = 400.0;
};

/** One I/O transfer description. */
struct IoRequest
{
    /** Items (numbers) transferred. */
    std::uint64_t items = 0;
    /** Bytes per item when written unformatted. */
    unsigned bytes_per_item = 8;
    /** True for formatted (character) I/O. */
    bool formatted = true;
};

/** The per-cluster I/O processor model. */
class IoProcessor : public Named
{
  public:
    explicit IoProcessor(const std::string &name,
                         const IoParams &params = IoParams{})
        : Named(name), _params(params)
    {
    }

    /** Seconds one request takes on the IP. */
    double
    requestSeconds(const IoRequest &req) const
    {
        double overhead = _params.request_overhead_us * 1e-6;
        if (req.formatted) {
            return overhead + static_cast<double>(req.items) *
                                  _params.formatted_item_us * 1e-6;
        }
        double bytes = static_cast<double>(req.items) *
                       req.bytes_per_item;
        return overhead + bytes / (_params.unformatted_mb_s * 1e6);
    }

    /** Account a request; returns its duration in seconds. */
    double
    perform(const IoRequest &req)
    {
        double seconds = requestSeconds(req);
        _requests.inc();
        _items.inc(req.items);
        _busy_seconds += seconds;
        return seconds;
    }

    /** Speedup of converting a formatted request to unformatted. */
    double
    unformattedGain(const IoRequest &req) const
    {
        sim_assert(req.formatted, "request is already unformatted");
        IoRequest binary = req;
        binary.formatted = false;
        return requestSeconds(req) / requestSeconds(binary);
    }

    std::uint64_t requestCount() const { return _requests.value(); }
    std::uint64_t itemCount() const { return _items.value(); }
    double busySeconds() const { return _busy_seconds; }
    const IoParams &params() const { return _params; }

  private:
    IoParams _params;
    Counter _requests;
    Counter _items;
    double _busy_seconds = 0.0;
};

/**
 * The BDNA scenario: estimate the I/O seconds of its output phase in
 * both modes. Calibrated so formatted output costs the ~49 s the BDNA
 * profile carries and unformatted costs the residual few seconds left
 * in its 70 s hand-optimized time.
 */
struct BdnaIoScenario
{
    /** Numbers BDNA writes (trajectory snapshots). */
    std::uint64_t items = 4'000'000;
    /** Output statements issued. */
    std::uint64_t requests = 2000;

    double formattedSeconds(const IoProcessor &ip) const;
    double unformattedSeconds(const IoProcessor &ip) const;
};

} // namespace cedar::xylem

#endif // CEDARSIM_XYLEM_IO_HH
