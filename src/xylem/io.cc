/**
 * @file
 * I/O scenario implementations.
 */

#include "io.hh"

namespace cedar::xylem {

double
BdnaIoScenario::formattedSeconds(const IoProcessor &ip) const
{
    IoRequest req;
    req.items = items / requests;
    req.formatted = true;
    return ip.requestSeconds(req) * static_cast<double>(requests);
}

double
BdnaIoScenario::unformattedSeconds(const IoProcessor &ip) const
{
    IoRequest req;
    req.items = items / requests;
    req.formatted = false;
    return ip.requestSeconds(req) * static_cast<double>(requests);
}

} // namespace cedar::xylem
