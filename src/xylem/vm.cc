/**
 * @file
 * Virtual-memory model implementation.
 */

#include "vm.hh"

namespace cedar::xylem {

VirtualMemory::VirtualMemory(const std::string &name,
                             unsigned num_clusters, const VmParams &params)
    : Named(name), _params(params), _tlbs(num_clusters)
{
    sim_assert(num_clusters > 0, "need at least one cluster");
    sim_assert(_params.tlb_entries > 0, "TLB needs entries");
}

bool
VirtualMemory::tlbLookup(Tlb &tlb, Addr page)
{
    auto it = tlb.map.find(page);
    if (it == tlb.map.end())
        return false;
    tlb.lru.splice(tlb.lru.begin(), tlb.lru, it->second);
    return true;
}

void
VirtualMemory::tlbInsert(Tlb &tlb, Addr page)
{
    if (tlb.map.size() >= _params.tlb_entries) {
        Addr victim = tlb.lru.back();
        tlb.lru.pop_back();
        tlb.map.erase(victim);
    }
    tlb.lru.push_front(page);
    tlb.map[page] = tlb.lru.begin();
}

Translation
VirtualMemory::translate(unsigned cluster, Addr addr)
{
    sim_assert(cluster < _tlbs.size(), "bad cluster ", cluster);
    Addr page = mem::pageOf(addr);
    Tlb &tlb = _tlbs[cluster];

    if (tlbLookup(tlb, page)) {
        _hits.inc();
        tlb.vm_cycles += _params.hit_cycles;
        return Translation{Translation::Kind::hit, _params.hit_cycles};
    }

    auto pte = _page_table.find(page);
    if (pte != _page_table.end() && pte->second) {
        // A valid PTE exists in global memory (some cluster already
        // touched the page); this cluster still takes a fault to load
        // its own translation — the TRFD amplification.
        _refills.inc();
        ++tlb.faults;
        tlb.vm_cycles += _params.refill_cycles;
        tlbInsert(tlb, page);
        return Translation{Translation::Kind::refill,
                           _params.refill_cycles};
    }

    _first_touches.inc();
    ++tlb.faults;
    tlb.vm_cycles += _params.first_touch_cycles;
    _page_table[page] = true;
    tlbInsert(tlb, page);
    return Translation{Translation::Kind::first_touch,
                       _params.first_touch_cycles};
}

void
VirtualMemory::prefault(Addr start, std::uint64_t words)
{
    if (words == 0)
        return;
    for (Addr p = mem::pageOf(start);
         p <= mem::pageOf(start + words - 1); ++p) {
        _page_table[p] = true;
    }
}

void
VirtualMemory::flushTlb(unsigned cluster)
{
    sim_assert(cluster < _tlbs.size(), "bad cluster ", cluster);
    _tlbs[cluster].map.clear();
    _tlbs[cluster].lru.clear();
}

std::uint64_t
VirtualMemory::faults(unsigned cluster) const
{
    sim_assert(cluster < _tlbs.size(), "bad cluster ", cluster);
    return _tlbs[cluster].faults;
}

Tick
VirtualMemory::vmCycles(unsigned cluster) const
{
    sim_assert(cluster < _tlbs.size(), "bad cluster ", cluster);
    return _tlbs[cluster].vm_cycles;
}

void
VirtualMemory::resetStats()
{
    _hits.reset();
    _refills.reset();
    _first_touches.reset();
    for (auto &tlb : _tlbs) {
        tlb.faults = 0;
        tlb.vm_cycles = 0;
    }
}

} // namespace cedar::xylem
