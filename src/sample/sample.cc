/**
 * @file
 * Live-point sampling: warm-up, window permutation, CI stopping rule.
 */

#include "sample.hh"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "sim/checkpoint.hh"
#include "sim/logging.hh"
#include "sim/random.hh"

namespace cedar::sample {

namespace {

/** Fixed seed for the window permutation; part of determinism. */
constexpr std::uint64_t window_shuffle_seed = 0x5A4D504CULL; // "SMPL"

void
validate(const PhasedWorkload &wl, const SampleParams &params)
{
    sim_assert(wl.run_unit, "workload needs a run_unit");
    sim_assert(wl.total_units > 0, "workload needs at least one unit");
    sim_assert(params.warmup_units < wl.total_units,
               "warm-up (", params.warmup_units,
               ") must leave at least one unit to sample (total ",
               wl.total_units, ")");
    sim_assert(params.min_windows > 0, "need at least one window");
    sim_assert(params.target_rel_ci > 0.0, "CI target must be positive");
}

/** Fisher-Yates with a fixed-seed Rng: same span, same order, always. */
std::vector<unsigned>
windowOrder(unsigned first, unsigned last)
{
    std::vector<unsigned> order(last - first);
    std::iota(order.begin(), order.end(), first);
    Rng rng(window_shuffle_seed);
    for (std::size_t i = order.size(); i > 1; --i)
        std::swap(order[i - 1], order[rng.below(i)]);
    return order;
}

} // namespace

FullRun
runFull(const MachineFactory &factory, const PhasedWorkload &wl)
{
    sim_assert(wl.run_unit, "workload needs a run_unit");
    sim_assert(wl.total_units > 0, "workload needs at least one unit");
    FullRun result;
    result.unit_metrics.reserve(wl.total_units);
    auto machine = factory();
    for (unsigned u = 0; u < wl.total_units; ++u)
        result.unit_metrics.push_back(wl.run_unit(*machine, u));
    result.mean = std::accumulate(result.unit_metrics.begin(),
                                  result.unit_metrics.end(), 0.0) /
                  static_cast<double>(result.unit_metrics.size());
    return result;
}

SampledRun
runSampled(const MachineFactory &factory, const PhasedWorkload &wl,
           const SampleParams &params, std::string *live_point_io)
{
    validate(wl, params);

    // Phase 1: the live-point — either reused from the caller's cache
    // or produced by simulating the warm-up units in detail.
    std::string live_point;
    if (live_point_io && !live_point_io->empty()) {
        live_point = *live_point_io;
    } else {
        auto machine = factory();
        for (unsigned u = 0; u < params.warmup_units; ++u)
            wl.run_unit(*machine, u);
        live_point = machine->saveCheckpoint();
        if (live_point_io)
            *live_point_io = live_point;
    }

    // Phase 2: detailed measurement windows in deterministic shuffled
    // order over the unsampled span, with Welford's running moments.
    std::vector<unsigned> order =
        windowOrder(params.warmup_units, wl.total_units);
    unsigned cap = static_cast<unsigned>(order.size());
    if (params.max_windows)
        cap = std::min(cap, params.max_windows);

    SampledRun result;
    result.warmup_units = params.warmup_units;
    result.total_units = wl.total_units;
    double mean = 0.0, m2 = 0.0;
    unsigned n = 0;
    while (n < cap) {
        auto machine = factory();
        machine->restoreCheckpoint(live_point);
        double metric = wl.run_unit(*machine, order[n]);
        ++n;
        double delta = metric - mean;
        mean += delta / static_cast<double>(n);
        m2 += delta * (metric - mean);
        if (n >= params.min_windows && n > 1 && mean != 0.0) {
            double stddev =
                std::sqrt(m2 / static_cast<double>(n - 1));
            double rel_ci = params.z * stddev /
                            std::sqrt(static_cast<double>(n)) /
                            std::fabs(mean);
            if (rel_ci <= params.target_rel_ci)
                break;
        }
    }

    result.mean = mean;
    result.stddev =
        n > 1 ? std::sqrt(m2 / static_cast<double>(n - 1)) : 0.0;
    result.rel_ci = (n > 0 && mean != 0.0)
                        ? params.z * result.stddev /
                              std::sqrt(static_cast<double>(n)) /
                              std::fabs(mean)
                        : 0.0;
    result.windows = n;
    result.speedup_factor =
        static_cast<double>(wl.total_units) /
        static_cast<double>(params.warmup_units + n);
    return result;
}

} // namespace cedar::sample
