/**
 * @file
 * Sampled simulation over checkpoint live-points (SMARTS-style).
 *
 * A long workload is modelled as a sequence of repeating measurement
 * units (e.g. one rank-64 update per unit). Detailed simulation of
 * every unit is exact but slow; this subsystem instead:
 *
 *   1. runs `warmup_units` units in detail to reach a warmed state
 *      (caches filled, reservation clocks realistic) and saves that
 *      state as a checkpoint — the *live-point*;
 *   2. for each measurement window, restores the live-point into a
 *      fresh machine and runs exactly one unit in detail, recording
 *      the unit's metric;
 *   3. keeps adding windows (walking a deterministic permutation of
 *      the remaining units) until the confidence interval of the
 *      running mean is tighter than `target_rel_ci`, then reports the
 *      mean as the estimate for the whole workload.
 *
 * Everything is deterministic: the window permutation is fixed by an
 * Rng with a hard-coded seed, and each window starts from the same
 * byte-identical live-point, so the estimate is reproducible to the
 * last bit. The live-point can be handed back to the caller and
 * reused across invocations (warm-checkpoint reuse in sweeps).
 */

#ifndef CEDARSIM_SAMPLE_SAMPLE_HH
#define CEDARSIM_SAMPLE_SAMPLE_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "machine/cedar.hh"

namespace cedar::sample {

/** Builds a fresh machine for one detailed window. */
using MachineFactory =
    std::function<std::unique_ptr<machine::CedarMachine>()>;

/** A workload expressed as repeating measurement units. */
struct PhasedWorkload
{
    /** Total units the full workload would run. */
    unsigned total_units = 0;

    /**
     * Run unit @p index on @p machine in detail and return the unit's
     * metric (e.g. its MFLOPS). Must leave the machine quiescent
     * (event queue drained) so a checkpoint may follow.
     */
    std::function<double(machine::CedarMachine &, unsigned)> run_unit;
};

/** Sampling-control knobs. */
struct SampleParams
{
    /** Units simulated in detail before the live-point is saved. */
    unsigned warmup_units = 2;
    /** Windows always run before the CI stopping rule is consulted. */
    unsigned min_windows = 4;
    /** Hard cap on windows (0 = all remaining units). */
    unsigned max_windows = 0;
    /** Stop once z * stddev / sqrt(n) / mean falls at or below this. */
    double target_rel_ci = 0.05;
    /** Normal critical value for the interval (1.96 = 95%). */
    double z = 1.96;
};

/** A detailed (exact) run of every unit. */
struct FullRun
{
    std::vector<double> unit_metrics;
    /** Arithmetic mean of unit_metrics. */
    double mean = 0.0;
};

/** A confidence-interval-driven sampled run. */
struct SampledRun
{
    /** The estimate: mean metric over the sampled windows. */
    double mean = 0.0;
    double stddev = 0.0;
    /** Achieved z * stddev / sqrt(n) / |mean| at the stopping point. */
    double rel_ci = 0.0;
    /** Measurement windows actually simulated. */
    unsigned windows = 0;
    unsigned warmup_units = 0;
    unsigned total_units = 0;
    /** Detailed units avoided: total / (warmup + windows). */
    double speedup_factor = 1.0;
};

/** Simulate every unit in detail on one machine (the reference). */
FullRun runFull(const MachineFactory &factory, const PhasedWorkload &wl);

/**
 * Sampled estimate of the workload's mean unit metric.
 *
 * @param live_point_io optional live-point cache: when non-null and
 *        non-empty, warm-up is skipped and the given snapshot is used
 *        directly; when non-null and empty, the freshly saved
 *        live-point is stored there for reuse.
 */
SampledRun runSampled(const MachineFactory &factory,
                      const PhasedWorkload &wl, const SampleParams &params,
                      std::string *live_point_io = nullptr);

} // namespace cedar::sample

#endif // CEDARSIM_SAMPLE_SAMPLE_HH
