/**
 * @file
 * Statistics snapshot and report rendering.
 */

#include "machine_report.hh"

#include <algorithm>
#include <sstream>

#include "core/report.hh"

namespace cedar::core {

MachineSnapshot
snapshot(machine::CedarMachine &machine)
{
    // Everything here reads the machine's StatRegistry; the component
    // tree is never walked directly.
    const StatRegistry &reg = machine.stats();
    MachineSnapshot snap;
    snap.elapsed = machine.sim().curTick();

    snap.sim_events = static_cast<std::uint64_t>(
        reg.scalarValue("cedar.sim.events"));
    snap.host_seconds = reg.scalarValue("cedar.sim.host_seconds");
    snap.host_event_rate = reg.scalarValue("cedar.sim.host_event_rate");

    snap.gm_reads = reg.counterValue("cedar.gm.reads");
    snap.gm_writes = reg.counterValue("cedar.gm.writes");
    snap.gm_syncs = reg.counterValue("cedar.gm.syncs");
    const SampleStat &lat = reg.sampleStat("cedar.gm.read_latency");
    snap.gm_read_latency_mean = lat.mean();
    snap.gm_read_latency_max = lat.max();

    snap.module_conflicts = reg.sumCounters("cedar.gm.mod*.conflicts");
    snap.module_wait_mean = reg.weightedMean("cedar.gm.mod*.wait");

    snap.fwd_delivered_words = static_cast<std::uint64_t>(
        reg.scalarValue("cedar.gm.fwd.delivered_words"));
    snap.rev_delivered_words = static_cast<std::uint64_t>(
        reg.scalarValue("cedar.gm.rev.delivered_words"));
    snap.fwd_queueing_mean =
        reg.sampleStat("cedar.gm.fwd.queueing").mean();
    snap.rev_queueing_mean =
        reg.sampleStat("cedar.gm.rev.queueing").mean();
    if (snap.elapsed > 0) {
        double peak_words =
            static_cast<double>(machine.gm().numModules()) /
            machine.config().gm.module_access_cycles *
            static_cast<double>(snap.elapsed);
        snap.gm_bandwidth_utilization =
            static_cast<double>(snap.rev_delivered_words) / peak_words;
    }

    snap.cache_hits = reg.sumCounters("cedar.cluster*.cache.hits");
    snap.cache_misses = reg.sumCounters("cedar.cluster*.cache.misses");
    snap.cache_writebacks =
        reg.sumCounters("cedar.cluster*.cache.writebacks");
    snap.ccb_starts = reg.sumCounters("cedar.cluster*.ccb.starts");
    snap.ccb_dispatches =
        reg.sumCounters("cedar.cluster*.ccb.dispatches");

    snap.total_flops = reg.sumScalars("cedar.cluster*.ce*.flops");
    snap.total_ops = reg.sumCounters("cedar.cluster*.ce*.ops");
    snap.pfu_requests =
        reg.sumCounters("cedar.cluster*.ce*.pfu.requests");
    snap.pfu_latency_mean =
        reg.weightedMean("cedar.cluster*.ce*.pfu.latency");

    if (const HostProfiler *prof = machine.sim().profiler())
        snap.host_profile = prof->table();
    return snap;
}

std::string
renderReport(const MachineSnapshot &snap)
{
    std::ostringstream os;
    os << "=== machine report ===\n";
    os << "elapsed: " << snap.elapsed << " cycles ("
       << fmt(ticksToMicros(snap.elapsed), 1) << " us)\n";
    os << "work: " << fmt(snap.total_flops, 0) << " flops in "
       << snap.total_ops << " ops -> " << fmt(snap.mflops(), 1)
       << " MFLOPS\n";

    os << "\nglobal memory:\n";
    os << "  reads " << snap.gm_reads << ", writes " << snap.gm_writes
       << ", syncs " << snap.gm_syncs << "\n";
    os << "  read latency mean " << fmt(snap.gm_read_latency_mean, 1)
       << " / max " << fmt(snap.gm_read_latency_max, 0)
       << " cycles (uncontended minimum 6)\n";
    os << "  module conflicts " << snap.module_conflicts
       << ", mean bank wait " << fmt(snap.module_wait_mean, 2)
       << " cycles\n";

    os << "\nnetworks:\n";
    os << "  forward delivered " << snap.fwd_delivered_words
       << " words, mean queueing " << fmt(snap.fwd_queueing_mean, 2)
       << " cycles\n";
    os << "  reverse delivered " << snap.rev_delivered_words
       << " words, mean queueing " << fmt(snap.rev_queueing_mean, 2)
       << " cycles\n";
    os << "  global bandwidth utilization "
       << fmt(100.0 * snap.gm_bandwidth_utilization, 1)
       << "% of the 768 MB/s budget\n";

    os << "\nclusters:\n";
    os << "  cache hits " << snap.cache_hits << " / misses "
       << snap.cache_misses << " (hit rate "
       << fmt(100.0 * snap.cacheHitRate(), 1) << "%), writebacks "
       << snap.cache_writebacks << "\n";
    os << "  concurrency bus: " << snap.ccb_starts << " gang starts, "
       << snap.ccb_dispatches << " dispatches\n";

    os << "\nprefetch units:\n";
    os << "  requests " << snap.pfu_requests << ", mean latency "
       << fmt(snap.pfu_latency_mean, 1)
       << " cycles (hardware minimum 8)\n";

    os << "\nengine:\n";
    os << "  " << snap.sim_events << " events in "
       << fmt(snap.host_seconds, 3) << " host seconds ("
       << fmt(snap.host_event_rate / 1e6, 2) << " M events/s)\n";

    if (!snap.host_profile.empty()) {
        double total = 0.0;
        for (const auto &k : snap.host_profile)
            total += k.seconds;
        os << "\nhost profile (top event kinds by exclusive host time):\n";
        std::size_t top = std::min<std::size_t>(snap.host_profile.size(), 10);
        for (std::size_t i = 0; i < top; ++i) {
            const auto &k = snap.host_profile[i];
            os << "  " << fmt(total > 0.0 ? 100.0 * k.seconds / total : 0.0, 1)
               << "%  " << fmt(k.seconds * 1e3, 2) << " ms  "
               << k.dispatches << " dispatches  " << k.kind << "\n";
        }
        if (snap.host_profile.size() > top) {
            os << "  ... " << (snap.host_profile.size() - top)
               << " more kinds\n";
        }
    }
    return os.str();
}

} // namespace cedar::core
