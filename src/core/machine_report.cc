/**
 * @file
 * Statistics snapshot and report rendering.
 */

#include "machine_report.hh"

#include <sstream>

#include "core/report.hh"

namespace cedar::core {

MachineSnapshot
snapshot(machine::CedarMachine &machine)
{
    MachineSnapshot snap;
    snap.elapsed = machine.sim().curTick();

    auto &gm = machine.gm();
    snap.gm_reads = gm.readCount();
    snap.gm_writes = gm.writeCount();
    snap.gm_syncs = gm.syncCount();
    snap.gm_read_latency_mean = gm.readLatencyStat().mean();
    snap.gm_read_latency_max = gm.readLatencyStat().max();

    double wait_sum = 0.0;
    std::uint64_t wait_n = 0;
    for (unsigned m = 0; m < gm.numModules(); ++m) {
        const auto &mod = gm.module(m);
        snap.module_conflicts += mod.conflictCount();
        wait_sum += mod.waitStat().mean() *
                    static_cast<double>(mod.waitStat().count());
        wait_n += mod.waitStat().count();
    }
    snap.module_wait_mean =
        wait_n ? wait_sum / static_cast<double>(wait_n) : 0.0;

    snap.fwd_delivered_words = gm.forwardNet().deliveredWords();
    snap.rev_delivered_words = gm.reverseNet().deliveredWords();
    snap.fwd_queueing_mean = gm.forwardNet().queueingStat().mean();
    snap.rev_queueing_mean = gm.reverseNet().queueingStat().mean();
    if (snap.elapsed > 0) {
        double peak_words =
            static_cast<double>(gm.numModules()) /
            machine.config().gm.module_access_cycles *
            static_cast<double>(snap.elapsed);
        snap.gm_bandwidth_utilization =
            static_cast<double>(snap.rev_delivered_words) / peak_words;
    }

    for (unsigned c = 0; c < machine.numClusters(); ++c) {
        auto &cl = machine.clusterAt(c);
        snap.cache_hits += cl.cache().hitCount();
        snap.cache_misses += cl.cache().missCount();
        snap.cache_writebacks += cl.cache().writebackCount();
        snap.ccb_starts += cl.ccb().startCount();
        snap.ccb_dispatches += cl.ccb().dispatchCount();
    }

    double pfu_lat_sum = 0.0;
    std::uint64_t pfu_lat_n = 0;
    for (unsigned i = 0; i < machine.numCes(); ++i) {
        auto &ce = machine.ceAt(i);
        snap.total_flops += ce.flops();
        snap.total_ops += ce.opsCompleted();
        snap.pfu_requests += ce.pfu().requestsIssued();
        const auto &lat = ce.pfu().latencyStat();
        pfu_lat_sum += lat.mean() * static_cast<double>(lat.count());
        pfu_lat_n += lat.count();
    }
    snap.pfu_latency_mean =
        pfu_lat_n ? pfu_lat_sum / static_cast<double>(pfu_lat_n) : 0.0;
    return snap;
}

std::string
renderReport(const MachineSnapshot &snap)
{
    std::ostringstream os;
    os << "=== machine report ===\n";
    os << "elapsed: " << snap.elapsed << " cycles ("
       << fmt(ticksToMicros(snap.elapsed), 1) << " us)\n";
    os << "work: " << fmt(snap.total_flops, 0) << " flops in "
       << snap.total_ops << " ops -> " << fmt(snap.mflops(), 1)
       << " MFLOPS\n";

    os << "\nglobal memory:\n";
    os << "  reads " << snap.gm_reads << ", writes " << snap.gm_writes
       << ", syncs " << snap.gm_syncs << "\n";
    os << "  read latency mean " << fmt(snap.gm_read_latency_mean, 1)
       << " / max " << fmt(snap.gm_read_latency_max, 0)
       << " cycles (uncontended minimum 6)\n";
    os << "  module conflicts " << snap.module_conflicts
       << ", mean bank wait " << fmt(snap.module_wait_mean, 2)
       << " cycles\n";

    os << "\nnetworks:\n";
    os << "  forward delivered " << snap.fwd_delivered_words
       << " words, mean queueing " << fmt(snap.fwd_queueing_mean, 2)
       << " cycles\n";
    os << "  reverse delivered " << snap.rev_delivered_words
       << " words, mean queueing " << fmt(snap.rev_queueing_mean, 2)
       << " cycles\n";
    os << "  global bandwidth utilization "
       << fmt(100.0 * snap.gm_bandwidth_utilization, 1)
       << "% of the 768 MB/s budget\n";

    os << "\nclusters:\n";
    os << "  cache hits " << snap.cache_hits << " / misses "
       << snap.cache_misses << " (hit rate "
       << fmt(100.0 * snap.cacheHitRate(), 1) << "%), writebacks "
       << snap.cache_writebacks << "\n";
    os << "  concurrency bus: " << snap.ccb_starts << " gang starts, "
       << snap.ccb_dispatches << " dispatches\n";

    os << "\nprefetch units:\n";
    os << "  requests " << snap.pfu_requests << ", mean latency "
       << fmt(snap.pfu_latency_mean, 1)
       << " cycles (hardware minimum 8)\n";
    return os.str();
}

} // namespace cedar::core
