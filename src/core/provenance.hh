/**
 * @file
 * Run provenance: who built this binary, where is it running, and
 * which invocation produced a given line of output.
 *
 * Every bench and validation `--json` line carries these keys so a
 * result file scraped months later still identifies the commit, build
 * type, compiler, and host that produced it — the minimum needed to
 * decide whether two measurements are comparable. The run id is
 * minted once per process, so all lines from one invocation share it
 * (and within-process determinism comparisons stay byte-identical).
 */

#ifndef CEDARSIM_CORE_PROVENANCE_HH
#define CEDARSIM_CORE_PROVENANCE_HH

#include <string>

namespace cedar::core {

/** Identity of this build and invocation. */
struct Provenance
{
    /** Unique per process: hex of start-time and pid. */
    std::string run_id;
    /** Short git commit the build was configured from ("unknown"
     *  outside a checkout). */
    std::string git_sha;
    /** CMake build type (Release, Debug, ...). */
    std::string build_type;
    /** Compiler version string. */
    std::string compiler;
    /** Hostname at startup. */
    std::string host;
};

/** The process-wide provenance record (computed on first use). */
const Provenance &provenance();

} // namespace cedar::core

#endif // CEDARSIM_CORE_PROVENANCE_HH
