/**
 * @file
 * Table formatting implementation.
 */

#include "report.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <sstream>

#include <unistd.h>

#include "core/provenance.hh"
#include "sim/engine.hh"
#include "sim/hostprof.hh"
#include "sim/logging.hh"

namespace cedar::core {

namespace {

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default: out += c;
        }
    }
    return out;
}

std::string
jsonNumber(double v)
{
    if (!std::isfinite(v))
        return "0";
    if (v == std::floor(v) && std::abs(v) < 1e15) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.0f", v);
        return buf;
    }
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return buf;
}

} // namespace

TableWriter::TableWriter(std::vector<std::string> headers,
                         unsigned min_width)
    : _headers(std::move(headers)), _min_width(min_width)
{
    sim_assert(!_headers.empty(), "table needs at least one column");
}

void
TableWriter::row(const std::vector<std::string> &cells)
{
    sim_assert(cells.size() == _headers.size(), "row has ", cells.size(),
               " cells but the table has ", _headers.size(), " columns");
    _rows.push_back(cells);
}

std::string
TableWriter::str() const
{
    std::vector<std::size_t> widths(_headers.size(), _min_width);
    for (std::size_t c = 0; c < _headers.size(); ++c)
        widths[c] = std::max(widths[c], _headers[c].size());
    for (const auto &r : _rows)
        for (std::size_t c = 0; c < r.size(); ++c)
            widths[c] = std::max(widths[c], r[c].size());

    std::ostringstream os;
    auto emit = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            os << (c == 0 ? "" : "  ");
            // First column left-aligned, the rest right-aligned.
            if (c == 0) {
                os << cells[c]
                   << std::string(widths[c] - cells[c].size(), ' ');
            } else {
                os << std::string(widths[c] - cells[c].size(), ' ')
                   << cells[c];
            }
        }
        os << '\n';
    };
    emit(_headers);
    std::size_t total = 0;
    for (std::size_t w : widths)
        total += w + 2;
    os << std::string(total > 2 ? total - 2 : total, '-') << '\n';
    for (const auto &r : _rows)
        emit(r);
    return os.str();
}

void
TableWriter::print() const
{
    std::fputs(str().c_str(), stdout);
}

BenchOutput::BenchOutput(const std::string &name, int argc, char **argv)
    : _name(name)
{
    for (int i = 1; i < argc; ++i)
        if (std::strcmp(argv[i], "--json") == 0)
            _json_only = true;
    if (_json_only) {
        // Park the human-readable output in /dev/null; emit() writes
        // the JSON line to the saved descriptor and then restores it.
        std::fflush(stdout);
        _saved_stdout = ::dup(STDOUT_FILENO);
        if (_saved_stdout < 0 ||
            !std::freopen("/dev/null", "w", stdout)) {
            _json_only = false;
            if (_saved_stdout >= 0) {
                ::close(_saved_stdout);
                _saved_stdout = -1;
            }
        }
    }
}

BenchOutput::~BenchOutput()
{
    if (_saved_stdout >= 0)
        emit();
}

void
BenchOutput::add(const std::string &key, const std::string &raw)
{
    if (!_body.empty())
        _body += ',';
    _body += '"' + jsonEscape(key) + "\":" + raw;
}

void
BenchOutput::metric(const std::string &key, double value)
{
    add(key, jsonNumber(value));
}

void
BenchOutput::metric(const std::string &key, std::uint64_t value)
{
    add(key, std::to_string(value));
}

void
BenchOutput::metric(const std::string &key, int value)
{
    add(key, std::to_string(value));
}

void
BenchOutput::metric(const std::string &key, unsigned value)
{
    add(key, std::to_string(value));
}

void
BenchOutput::metric(const std::string &key, const std::string &value)
{
    add(key, '"' + jsonEscape(value) + '"');
}

void
BenchOutput::metric(const std::string &key, const char *value)
{
    metric(key, std::string(value));
}

std::string
BenchOutput::jsonLine() const
{
    std::string line = "{\"bench\":\"" + jsonEscape(_name) + '"';
    if (!_body.empty())
        line += ',' + _body;
    line += '}';
    return line;
}

void
BenchOutput::emit()
{
    // Every bench JSON line carries engine throughput for free: events
    // executed and host seconds across all Simulations in the process.
    // Wall-clock derived, so scripts diffing bench output for
    // determinism should ignore the host-time keys.
    if (!_engine_metrics_added) {
        _engine_metrics_added = true;
        metric("sim_events", Simulation::globalEventsExecuted());
        double host = Simulation::globalHostSeconds();
        metric("sim_host_seconds", host);
        metric("sim_host_event_rate",
               host > 0.0 ? static_cast<double>(
                                Simulation::globalEventsExecuted()) /
                                host
                          : 0.0);
        // Who/what/where produced this line (process-constant).
        const Provenance &p = provenance();
        metric("run_id", p.run_id);
        metric("git_sha", p.git_sha);
        metric("build_type", p.build_type);
        metric("compiler", p.compiler);
        metric("host", p.host);
        // Per-event-kind host-time attribution, when any engine ran
        // with profiling armed (CEDAR_HOST_PROFILE=1 or programmatic).
        auto prof = HostProfiler::globalTable();
        if (!prof.empty()) {
            std::string arr = "[";
            std::size_t top = std::min<std::size_t>(prof.size(), 10);
            for (std::size_t i = 0; i < top; ++i) {
                if (i)
                    arr += ',';
                arr += "{\"kind\":\"" + jsonEscape(prof[i].kind) +
                       "\",\"dispatches\":" +
                       std::to_string(prof[i].dispatches) +
                       ",\"seconds\":" + jsonNumber(prof[i].seconds) +
                       '}';
            }
            arr += ']';
            add("host_profile", arr);
        }
    }
    std::string line = jsonLine();
    line += '\n';
    std::fflush(stdout);
    if (_saved_stdout >= 0) {
        // Restore the real stdout before printing the JSON line.
        ::dup2(_saved_stdout, STDOUT_FILENO);
        ::close(_saved_stdout);
        _saved_stdout = -1;
    }
    std::fputs(line.c_str(), stdout);
    std::fflush(stdout);
}

std::string
fmt(double value, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
    return buf;
}

std::string
vsPaper(double measured, double paper, int decimals)
{
    return fmt(measured, decimals) + " (" + fmt(paper, decimals) + ")";
}

double
relativeError(double measured, double paper)
{
    sim_assert(paper != 0.0, "paper value must be nonzero");
    return std::abs(measured - paper) / std::abs(paper);
}

} // namespace cedar::core
