/**
 * @file
 * Table formatting implementation.
 */

#include "report.hh"

#include <cmath>
#include <cstdio>
#include <sstream>

#include "sim/logging.hh"

namespace cedar::core {

TableWriter::TableWriter(std::vector<std::string> headers,
                         unsigned min_width)
    : _headers(std::move(headers)), _min_width(min_width)
{
    sim_assert(!_headers.empty(), "table needs at least one column");
}

void
TableWriter::row(const std::vector<std::string> &cells)
{
    sim_assert(cells.size() == _headers.size(), "row has ", cells.size(),
               " cells but the table has ", _headers.size(), " columns");
    _rows.push_back(cells);
}

std::string
TableWriter::str() const
{
    std::vector<std::size_t> widths(_headers.size(), _min_width);
    for (std::size_t c = 0; c < _headers.size(); ++c)
        widths[c] = std::max(widths[c], _headers[c].size());
    for (const auto &r : _rows)
        for (std::size_t c = 0; c < r.size(); ++c)
            widths[c] = std::max(widths[c], r[c].size());

    std::ostringstream os;
    auto emit = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            os << (c == 0 ? "" : "  ");
            // First column left-aligned, the rest right-aligned.
            if (c == 0) {
                os << cells[c]
                   << std::string(widths[c] - cells[c].size(), ' ');
            } else {
                os << std::string(widths[c] - cells[c].size(), ' ')
                   << cells[c];
            }
        }
        os << '\n';
    };
    emit(_headers);
    std::size_t total = 0;
    for (std::size_t w : widths)
        total += w + 2;
    os << std::string(total > 2 ? total - 2 : total, '-') << '\n';
    for (const auto &r : _rows)
        emit(r);
    return os.str();
}

void
TableWriter::print() const
{
    std::fputs(str().c_str(), stdout);
}

std::string
fmt(double value, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
    return buf;
}

std::string
vsPaper(double measured, double paper, int decimals)
{
    return fmt(measured, decimals) + " (" + fmt(paper, decimals) + ")";
}

double
relativeError(double measured, double paper)
{
    sim_assert(paper != 0.0, "paper value must be nonzero");
    return std::abs(measured - paper) / std::abs(paper);
}

} // namespace cedar::core
