/**
 * @file
 * Umbrella header: the public API of cedarsim.
 *
 * Typical use:
 *
 *   #include "core/cedar.hh"
 *
 *   cedar::machine::CedarMachine machine;          // the 4x8 system
 *   cedar::runtime::LoopRunner loops(machine);     // DOALL runtime
 *   auto r = cedar::kernels::runRank64(machine, {}); // a kernel
 *   std::printf("%.1f MFLOPS\n", r.mflopsRate());
 *
 * Layers, bottom up:
 *   sim/      discrete-event engine, statistics, logging
 *   net/      interconnect topologies (omega, fat tree, crossbar)
 *             and synthetic traffic generation
 *   mem/      interleaved global memory, Test-And-Operate sync
 *   prefetch/ per-CE prefetch units
 *   cluster/  Alliant FX/8: CEs, shared cache, concurrency bus
 *   machine/  the assembled Cedar system + performance monitors
 *   runtime/  CDOALL / SDOALL / XDOALL loop scheduling
 *   kernels/  VL, TM, RK, CG workloads (timed + functional)
 *   perfect/  Perfect Benchmarks workload models
 *   method/   the "judging parallelism" methodology and reference
 *             machines (Cray Y-MP/8, Cray 1, CM-5)
 *   core/     this facade and report formatting
 */

#ifndef CEDARSIM_CORE_CEDAR_HH
#define CEDARSIM_CORE_CEDAR_HH

#include "cluster/cluster.hh"
#include "core/machine_report.hh"
#include "core/report.hh"
#include "kernels/banded.hh"
#include "kernels/cg.hh"
#include "kernels/rank64.hh"
#include "kernels/tridiag.hh"
#include "kernels/vload.hh"
#include "machine/cedar.hh"
#include "machine/perfmon.hh"
#include "mem/globalmem.hh"
#include "method/machines.hh"
#include "method/metrics.hh"
#include "method/ppt.hh"
#include "method/stability.hh"
#include "net/crossbar.hh"
#include "net/fattree.hh"
#include "net/omega.hh"
#include "net/topology.hh"
#include "net/traffic.hh"
#include "perfect/model.hh"
#include "perfect/profile.hh"
#include "prefetch/pfu.hh"
#include "runtime/loops.hh"
#include "sim/engine.hh"
#include "sim/error.hh"
#include "sim/fault.hh"
#include "sim/probes.hh"
#include "sim/statreg.hh"
#include "sim/trace.hh"
#include "sim/watchdog.hh"

#endif // CEDARSIM_CORE_CEDAR_HH
