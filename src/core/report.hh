/**
 * @file
 * Console table formatting shared by the benches and examples, plus a
 * side-by-side "measured vs paper" cell type so every reproduction
 * binary reports the comparison uniformly.
 */

#ifndef CEDARSIM_CORE_REPORT_HH
#define CEDARSIM_CORE_REPORT_HH

#include <string>
#include <vector>

namespace cedar::core {

/** Simple fixed-width table printer for reproduction output. */
class TableWriter
{
  public:
    /** @param headers column titles; widths adapt to them */
    explicit TableWriter(std::vector<std::string> headers,
                         unsigned min_width = 10);

    /** Add a row of preformatted cells (must match header count). */
    void row(const std::vector<std::string> &cells);

    /** Render to stdout. */
    void print() const;

    /** Render to a string (for tests). */
    std::string str() const;

  private:
    std::vector<std::string> _headers;
    std::vector<std::vector<std::string>> _rows;
    unsigned _min_width;
};

/** Format a double with fixed decimals. */
std::string fmt(double value, int decimals = 1);

/** Format "measured (paper X)" comparison cells. */
std::string vsPaper(double measured, double paper, int decimals = 1);

/** Relative error |measured - paper| / paper. */
double relativeError(double measured, double paper);

} // namespace cedar::core

#endif // CEDARSIM_CORE_REPORT_HH
