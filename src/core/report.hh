/**
 * @file
 * Console table formatting shared by the benches and examples, plus a
 * side-by-side "measured vs paper" cell type so every reproduction
 * binary reports the comparison uniformly.
 */

#ifndef CEDARSIM_CORE_REPORT_HH
#define CEDARSIM_CORE_REPORT_HH

#include <cstdint>
#include <string>
#include <vector>

namespace cedar::core {

/** Simple fixed-width table printer for reproduction output. */
class TableWriter
{
  public:
    /** @param headers column titles; widths adapt to them */
    explicit TableWriter(std::vector<std::string> headers,
                         unsigned min_width = 10);

    /** Add a row of preformatted cells (must match header count). */
    void row(const std::vector<std::string> &cells);

    /** Render to stdout. */
    void print() const;

    /** Render to a string (for tests). */
    std::string str() const;

  private:
    std::vector<std::string> _headers;
    std::vector<std::vector<std::string>> _rows;
    unsigned _min_width;
};

/**
 * Headline-metric collector shared by the benches. A bench builds one
 * of these from argv, records its key numbers as it goes, and calls
 * emit() last; the metrics always come out as one single-line JSON
 * object so scripts can scrape results with `tail -n 1`. Passing
 * --json additionally suppresses the human-readable output: stdout is
 * routed to /dev/null for the run and only the JSON line survives.
 */
class BenchOutput
{
  public:
    /** @param name bench name recorded as the "bench" key */
    BenchOutput(const std::string &name, int argc, char **argv);
    ~BenchOutput();

    BenchOutput(const BenchOutput &) = delete;
    BenchOutput &operator=(const BenchOutput &) = delete;

    /** True when --json was given (tables are being discarded). */
    bool jsonOnly() const { return _json_only; }

    void metric(const std::string &key, double value);
    void metric(const std::string &key, std::uint64_t value);
    void metric(const std::string &key, int value);
    void metric(const std::string &key, unsigned value);
    void metric(const std::string &key, const std::string &value);
    void metric(const std::string &key, const char *value);

    /** The single-line JSON object accumulated so far. */
    std::string jsonLine() const;

    /** Print the JSON line (to the real stdout under --json). */
    void emit();

  private:
    void add(const std::string &key, const std::string &raw);

    std::string _name;
    std::string _body;
    bool _json_only = false;
    bool _engine_metrics_added = false;
    int _saved_stdout = -1;
};

/** Format a double with fixed decimals. */
std::string fmt(double value, int decimals = 1);

/** Format "measured (paper X)" comparison cells. */
std::string vsPaper(double measured, double paper, int decimals = 1);

/** Relative error |measured - paper| / paper. */
double relativeError(double measured, double paper);

} // namespace cedar::core

#endif // CEDARSIM_CORE_REPORT_HH
