/**
 * @file
 * Machine-wide statistics reporting: reads a CedarMachine's stat
 * registry after a run and renders what the Cedar performance
 * hardware would have shown — network utilization and queueing, memory
 * module load and conflicts, cache behaviour, prefetch latencies, and
 * per-CE work, aggregated over hierarchical component names.
 */

#ifndef CEDARSIM_CORE_MACHINE_REPORT_HH
#define CEDARSIM_CORE_MACHINE_REPORT_HH

#include <string>
#include <vector>

#include "machine/cedar.hh"
#include "sim/hostprof.hh"

namespace cedar::core {

/** Aggregated machine statistics snapshot. */
struct MachineSnapshot
{
    Tick elapsed = 0;

    // Engine (host-side performance of the simulator itself).
    std::uint64_t sim_events = 0;
    double host_seconds = 0.0;
    double host_event_rate = 0.0;

    // Global memory system.
    std::uint64_t gm_reads = 0;
    std::uint64_t gm_writes = 0;
    std::uint64_t gm_syncs = 0;
    double gm_read_latency_mean = 0.0;
    double gm_read_latency_max = 0.0;
    std::uint64_t module_conflicts = 0;
    double module_wait_mean = 0.0;

    // Networks.
    std::uint64_t fwd_delivered_words = 0;
    std::uint64_t rev_delivered_words = 0;
    double fwd_queueing_mean = 0.0;
    double rev_queueing_mean = 0.0;
    /** Delivered words / cycle over the window, vs the 16 w/cyc peak. */
    double gm_bandwidth_utilization = 0.0;

    // Clusters (summed).
    std::uint64_t cache_hits = 0;
    std::uint64_t cache_misses = 0;
    std::uint64_t cache_writebacks = 0;
    std::uint64_t ccb_starts = 0;
    std::uint64_t ccb_dispatches = 0;

    // CEs (summed).
    double total_flops = 0.0;
    std::uint64_t total_ops = 0;
    std::uint64_t pfu_requests = 0;
    double pfu_latency_mean = 0.0;

    /** Per-event-kind host time from this machine's engine; empty
     *  unless profiling was armed (see Simulation::setProfiling). */
    std::vector<HostProfiler::KindStats> host_profile;

    double
    mflops() const
    {
        return cedar::mflops(total_flops, elapsed);
    }

    double
    cacheHitRate() const
    {
        std::uint64_t total = cache_hits + cache_misses;
        return total ? double(cache_hits) / double(total) : 0.0;
    }
};

/** Collect a snapshot from the machine's current statistics. */
MachineSnapshot snapshot(machine::CedarMachine &machine);

/** Render the snapshot as a human-readable multi-section report. */
std::string renderReport(const MachineSnapshot &snap);

} // namespace cedar::core

#endif // CEDARSIM_CORE_MACHINE_REPORT_HH
