/**
 * @file
 * Provenance collection. Build identity arrives via compile
 * definitions (see src/core/CMakeLists.txt); runtime identity is read
 * once at first use.
 */

#include "provenance.hh"

#include <chrono>
#include <cstdio>

#include <unistd.h>

namespace cedar::core {

#ifndef CEDAR_GIT_SHA
#define CEDAR_GIT_SHA "unknown"
#endif
#ifndef CEDAR_BUILD_TYPE
#define CEDAR_BUILD_TYPE "unknown"
#endif

namespace {

Provenance
collect()
{
    Provenance p;
    auto now_ms =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count();
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%llx-%x",
                  static_cast<unsigned long long>(now_ms),
                  static_cast<unsigned>(::getpid()));
    p.run_id = buf;
    p.git_sha = CEDAR_GIT_SHA;
    p.build_type = CEDAR_BUILD_TYPE;
#ifdef __VERSION__
    p.compiler = __VERSION__;
#else
    p.compiler = "unknown";
#endif
    char host[256] = "unknown";
    if (::gethostname(host, sizeof(host) - 1) != 0)
        std::snprintf(host, sizeof(host), "unknown");
    p.host = host;
    return p;
}

} // namespace

const Provenance &
provenance()
{
    static const Provenance p = collect();
    return p;
}

} // namespace cedar::core
